package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Int is a registry counter. The hot path (Add/Inc) is a single atomic
// add — no locks, no allocations — so instrumented code stays on the
// zero-alloc fast path established in PR 1.
type Int struct {
	v atomic.Int64
}

// Add increments the counter by delta.
//
//invalidb:hotpath
func (i *Int) Add(delta int64) { i.v.Add(delta) }

// Inc increments the counter by one.
//
//invalidb:hotpath
func (i *Int) Inc() { i.v.Add(1) }

// Set overwrites the counter value.
func (i *Int) Set(v int64) { i.v.Store(v) }

// Value returns the current value.
func (i *Int) Value() int64 { return i.v.Load() }

// Registry aggregates named counters, gauges, latency recorders, and
// dynamic collectors from every layer of the system. Lookup
// (Counter/Latency/...) takes a mutex and may allocate, so components
// resolve their instruments once at construction time and hold the
// returned pointers; the per-event path is then purely atomic.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Int
	gauges     map[string]func() float64
	texts      map[string]func() string
	latencies  map[string]*LatencyRecorder
	collectors []func(emit func(name string, v float64))

	// The four pipeline-stage recorders are resolved once at construction
	// so RecordStages — which runs per delivered notification — never
	// takes the registry mutex or contends with Snapshot/scrapes.
	stageIngest    *LatencyRecorder
	stageGrid      *LatencyRecorder
	stageBus       *LatencyRecorder
	stageAppserver *LatencyRecorder
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	r := &Registry{
		counters:  make(map[string]*Int),
		gauges:    make(map[string]func() float64),
		texts:     make(map[string]func() string),
		latencies: make(map[string]*LatencyRecorder),
	}
	r.stageIngest = r.Latency(StageIngest)
	r.stageGrid = r.Latency(StageGrid)
	r.stageBus = r.Latency(StageBus)
	r.stageAppserver = r.Latency(StageAppserver)
	return r
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Int {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Int{}
		r.counters[name] = c
	}
	return c
}

// Gauge registers a callback sampled at snapshot time. Gauges cost
// nothing on the hot path: the callback runs only when /metrics or
// Snapshot is read. Re-registering a name replaces the callback.
func (r *Registry) Gauge(name string, fn func() float64) {
	r.mu.Lock()
	r.gauges[name] = fn
	r.mu.Unlock()
}

// Text registers a string-valued callback (e.g. a last-panic message),
// sampled at snapshot time.
func (r *Registry) Text(name string, fn func() string) {
	r.mu.Lock()
	r.texts[name] = fn
	r.mu.Unlock()
}

// Latency returns the named latency recorder, creating it on first use.
// Registry recorders are windowed (DefaultLatencyWindow most-recent
// samples) so a long-running daemon's memory stays bounded regardless of
// notification volume; the bench harness uses NewLatencyRecorder directly
// where exact all-sample percentiles are required.
func (r *Registry) Latency(name string) *LatencyRecorder {
	r.mu.Lock()
	defer r.mu.Unlock()
	l, ok := r.latencies[name]
	if !ok {
		l = NewWindowedLatencyRecorder(DefaultLatencyWindow)
		r.latencies[name] = l
	}
	return l
}

// Collect registers a callback that emits a dynamic family of gauges at
// snapshot time — e.g. one value per broker session or per topology
// task, where the member set changes at runtime.
func (r *Registry) Collect(fn func(emit func(name string, v float64))) {
	r.mu.Lock()
	r.collectors = append(r.collectors, fn)
	r.mu.Unlock()
}

// RegistrySnapshot is a point-in-time view of every instrument. Gauge
// values include both registered gauges and collector-emitted families.
type RegistrySnapshot struct {
	Counters  map[string]int64   `json:"counters"`
	Gauges    map[string]float64 `json:"gauges"`
	Texts     map[string]string  `json:"texts,omitempty"`
	Latencies map[string]Summary `json:"latencies,omitempty"`
}

// Snapshot samples all counters, gauges, texts, latency recorders, and
// collectors.
func (r *Registry) Snapshot() RegistrySnapshot {
	r.mu.Lock()
	counters := make(map[string]*Int, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]func() float64, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	texts := make(map[string]func() string, len(r.texts))
	for k, v := range r.texts {
		texts[k] = v
	}
	latencies := make(map[string]*LatencyRecorder, len(r.latencies))
	for k, v := range r.latencies {
		latencies[k] = v
	}
	collectors := make([]func(emit func(name string, v float64)), len(r.collectors))
	copy(collectors, r.collectors)
	r.mu.Unlock()

	snap := RegistrySnapshot{
		Counters:  make(map[string]int64, len(counters)),
		Gauges:    make(map[string]float64, len(gauges)),
		Texts:     make(map[string]string),
		Latencies: make(map[string]Summary, len(latencies)),
	}
	for k, c := range counters {
		snap.Counters[k] = c.Value()
	}
	for k, fn := range gauges {
		snap.Gauges[k] = fn()
	}
	for k, fn := range texts {
		if s := fn(); s != "" {
			snap.Texts[k] = s
		}
	}
	for k, l := range latencies {
		snap.Latencies[k] = l.Snapshot()
	}
	for _, fn := range collectors {
		fn(func(name string, v float64) { snap.Gauges[name] = v })
	}
	return snap
}

// Reset zeroes all counters and latency recorders. Gauges and
// collectors read live state and are unaffected.
func (r *Registry) Reset() {
	r.mu.Lock()
	counters := make([]*Int, 0, len(r.counters))
	for _, c := range r.counters {
		counters = append(counters, c)
	}
	latencies := make([]*LatencyRecorder, 0, len(r.latencies))
	for _, l := range r.latencies {
		latencies = append(latencies, l)
	}
	r.mu.Unlock()
	for _, c := range counters {
		c.Set(0)
	}
	for _, l := range latencies {
		l.Reset()
	}
}

// WriteJSON writes the snapshot as expvar-style JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WriteText writes the snapshot as sorted "name value" lines.
func (r *Registry) WriteText(w io.Writer) error {
	snap := r.Snapshot()
	lines := make([]string, 0, len(snap.Counters)+len(snap.Gauges)+len(snap.Latencies)+len(snap.Texts))
	for k, v := range snap.Counters {
		lines = append(lines, fmt.Sprintf("%s %d", k, v))
	}
	for k, v := range snap.Gauges {
		lines = append(lines, fmt.Sprintf("%s %g", k, v))
	}
	for k, s := range snap.Latencies {
		lines = append(lines, fmt.Sprintf("%s_count %d", k, s.Count))
		lines = append(lines, fmt.Sprintf("%s_avg_ms %g", k, s.AvgMS))
		lines = append(lines, fmt.Sprintf("%s_p99_ms %g", k, s.P99MS))
		lines = append(lines, fmt.Sprintf("%s_max_ms %g", k, s.MaxMS))
	}
	for k, v := range snap.Texts {
		lines = append(lines, fmt.Sprintf("%s %q", k, v))
	}
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return err
		}
	}
	return nil
}

// Stage recorder names used for the per-write pipeline breakdown. Each
// stage is bounded by the timestamps stamped on the write as it crosses
// the corresponding boundary (see core.Notification).
const (
	StageIngest    = "stage.ingest"    // client send → write-ingest bolt
	StageGrid      = "stage.grid"      // write-ingest → matching-node emit
	StageBus       = "stage.bus"       // matching-node emit → subscriber receive
	StageAppserver = "stage.appserver" // subscriber receive → client delivery
)

// RecordStages records one sample for each pipeline stage from the raw
// nanosecond stamps carried on a notification. A zero stamp means the
// stage boundary was not observed (e.g. a resync-originated
// notification) and the stages touching it are skipped. Negative
// durations from cross-node clock skew are recorded as-is — the
// histogram clamps, and the recorder tolerates them. The stage recorders
// are pre-resolved fields, so this path never takes the registry mutex.
//
//invalidb:hotpath
func (r *Registry) RecordStages(writeNs, ingestNs, matchNs, recvNs, deliverNs int64) {
	if writeNs != 0 && ingestNs != 0 {
		r.stageIngest.Record(time.Duration(ingestNs - writeNs))
	}
	if ingestNs != 0 && matchNs != 0 {
		r.stageGrid.Record(time.Duration(matchNs - ingestNs))
	}
	if matchNs != 0 && recvNs != 0 {
		r.stageBus.Record(time.Duration(recvNs - matchNs))
	}
	if recvNs != 0 && deliverNs != 0 {
		r.stageAppserver.Record(time.Duration(deliverNs - recvNs))
	}
}

// Breakdown summarizes where notification latency is spent, stage by
// stage, instead of one opaque end-to-end number.
type Breakdown struct {
	Ingest    Summary `json:"ingest"`
	Grid      Summary `json:"grid"`
	Bus       Summary `json:"bus"`
	Appserver Summary `json:"appserver"`
}

// Breakdown snapshots the four stage recorders.
func (r *Registry) Breakdown() Breakdown {
	return Breakdown{
		Ingest:    r.stageIngest.Snapshot(),
		Grid:      r.stageGrid.Snapshot(),
		Bus:       r.stageBus.Snapshot(),
		Appserver: r.stageAppserver.Snapshot(),
	}
}

// String renders the breakdown as one aligned row per stage.
func (b Breakdown) String() string {
	row := func(name string, s Summary) string {
		return fmt.Sprintf("  %-10s avg=%8.3fms  p99=%8.3fms  max=%8.3fms  (n=%d)\n",
			name, s.AvgMS, s.P99MS, s.MaxMS, s.Count)
	}
	return "stage latency breakdown:\n" +
		row("ingest", b.Ingest) +
		row("grid", b.Grid) +
		row("bus", b.Bus) +
		row("appserver", b.Appserver)
}
