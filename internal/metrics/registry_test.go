package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// Regression: a negative duration (real under cross-node clock skew) used
// to compute a negative bucket index and panic with "index out of range".
func TestHistogramNegativeDuration(t *testing.T) {
	h := NewHistogram(10, 100)
	h.Record(-5 * time.Millisecond) // panicked before the clamp
	h.Record(3 * time.Millisecond)
	buckets, overflow := h.Buckets()
	if overflow != 0 {
		t.Fatalf("overflow = %v", overflow)
	}
	if buckets[0].Frequency != 1.0 { // both samples clamp into bucket 0
		t.Fatalf("bucket[0] = %v, want 1.0", buckets[0].Frequency)
	}
	if h.Total() != 2 {
		t.Fatalf("Total = %d", h.Total())
	}
}

// Regression: variance via sumSq/n − mean² cancels catastrophically for a
// tight distribution around a large mean. With ~1h-offset samples spread
// ±1µs, the naive form loses all significant digits and the old `< 0`
// clamp reported std=0; the two-pass form recovers the true spread.
func TestSnapshotVarianceCancellation(t *testing.T) {
	r := NewLatencyRecorder()
	base := time.Hour // large constant offset, ~3.6e6 ms
	for i := 0; i < 999; i++ {
		off := time.Duration(i%3-1) * time.Microsecond // -1µs, 0, +1µs uniformly
		r.Record(base + off)
	}
	s := r.Snapshot()
	// True population std: offsets are {-1µs,0,+1µs} uniformly → std = sqrt(2/3)µs.
	wantStd := math.Sqrt(2.0/3.0) * 1e-3 // in ms
	if math.Abs(s.StdMS-wantStd)/wantStd > 1e-6 {
		t.Fatalf("StdMS = %v, want %v (naive sumSq form cancels to 0 or garbage)", s.StdMS, wantStd)
	}
}

func TestSnapshotNegativeSamples(t *testing.T) {
	r := NewLatencyRecorder()
	r.Record(-2 * time.Millisecond)
	r.Record(2 * time.Millisecond)
	s := r.Snapshot()
	if s.Count != 2 || s.AvgMS != 0 {
		t.Fatalf("snapshot = %+v", s)
	}
	if math.Abs(s.StdMS-2) > 1e-9 {
		t.Fatalf("StdMS = %v, want 2", s.StdMS)
	}
}

func TestRegistryCounterGaugeText(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("writes")
	c.Add(3)
	c.Inc()
	if r.Counter("writes") != c {
		t.Fatal("Counter must return the same instance per name")
	}
	r.Gauge("depth", func() float64 { return 7.5 })
	r.Text("last_panic", func() string { return "boom" })
	r.Text("empty", func() string { return "" })
	r.Collect(func(emit func(string, float64)) {
		emit("session.a.dropped", 2)
	})
	snap := r.Snapshot()
	if snap.Counters["writes"] != 4 {
		t.Fatalf("writes = %d", snap.Counters["writes"])
	}
	if snap.Gauges["depth"] != 7.5 {
		t.Fatalf("depth = %v", snap.Gauges["depth"])
	}
	if snap.Gauges["session.a.dropped"] != 2 {
		t.Fatalf("collector gauge = %v", snap.Gauges["session.a.dropped"])
	}
	if snap.Texts["last_panic"] != "boom" {
		t.Fatalf("texts = %v", snap.Texts)
	}
	if _, ok := snap.Texts["empty"]; ok {
		t.Fatal("empty text values should be omitted")
	}
}

func TestRegistryLatencyAndReset(t *testing.T) {
	r := NewRegistry()
	r.Latency("e2e").Record(5 * time.Millisecond)
	r.Counter("n").Add(9)
	if s := r.Snapshot(); s.Latencies["e2e"].Count != 1 {
		t.Fatalf("latency count = %d", s.Latencies["e2e"].Count)
	}
	r.Reset()
	s := r.Snapshot()
	if s.Counters["n"] != 0 || s.Latencies["e2e"].Count != 0 {
		t.Fatalf("Reset left state: %+v", s)
	}
}

func TestRegistryWriters(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.b").Add(1)
	r.Gauge("g", func() float64 { return 2 })
	r.Latency("l").Record(time.Millisecond)

	var jsonBuf bytes.Buffer
	if err := r.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	var decoded RegistrySnapshot
	if err := json.Unmarshal(jsonBuf.Bytes(), &decoded); err != nil {
		t.Fatalf("WriteJSON output not valid JSON: %v", err)
	}
	if decoded.Counters["a.b"] != 1 {
		t.Fatalf("decoded counters = %v", decoded.Counters)
	}

	var textBuf bytes.Buffer
	if err := r.WriteText(&textBuf); err != nil {
		t.Fatal(err)
	}
	text := textBuf.String()
	for _, want := range []string{"a.b 1", "g 2", "l_count 1"} {
		if !strings.Contains(text, want) {
			t.Fatalf("WriteText missing %q in:\n%s", want, text)
		}
	}
}

func TestRegistryStagesAndBreakdown(t *testing.T) {
	r := NewRegistry()
	base := time.Now().UnixNano()
	r.RecordStages(base, base+1e6, base+3e6, base+4e6, base+6e6)
	b := r.Breakdown()
	if b.Ingest.Count != 1 || math.Abs(b.Ingest.AvgMS-1) > 1e-9 {
		t.Fatalf("ingest = %+v", b.Ingest)
	}
	if math.Abs(b.Grid.AvgMS-2) > 1e-9 {
		t.Fatalf("grid = %+v", b.Grid)
	}
	if math.Abs(b.Bus.AvgMS-1) > 1e-9 {
		t.Fatalf("bus = %+v", b.Bus)
	}
	if math.Abs(b.Appserver.AvgMS-2) > 1e-9 {
		t.Fatalf("appserver = %+v", b.Appserver)
	}
	if !strings.Contains(b.String(), "grid") {
		t.Fatal("Breakdown.String missing stage row")
	}

	// Missing stamps skip only the stages they bound.
	r2 := NewRegistry()
	r2.RecordStages(0, base, base+1e6, base+2e6, base+3e6)
	if b2 := r2.Breakdown(); b2.Ingest.Count != 0 || b2.Grid.Count != 1 {
		t.Fatalf("partial stamps = %+v", b2)
	}
}

// Satellite: parallel Record/Snapshot/Reset under -race.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	r.Gauge("depth", func() float64 { return 1 })
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("writes")
			l := r.Latency("e2e")
			for i := 0; i < 2000; i++ {
				c.Inc()
				l.Record(time.Duration(i) * time.Microsecond)
				r.RecordStages(1, 2, 3, 4, 5)
			}
		}(w)
	}
	wg.Add(2)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				r.Snapshot()
				r.Counter("writes") // concurrent get-or-create
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			r.Reset()
			time.Sleep(time.Millisecond)
		}
		close(stop)
	}()
	wg.Wait()
	r.Snapshot() // must not race or panic
}

// Regression: registry latency recorders are windowed, so a long-running
// daemon recording per-notification stage samples holds a fixed-size
// buffer instead of growing ~32B per notification forever.
func TestRegistryLatencyIsWindowed(t *testing.T) {
	r := NewRegistry()
	l := r.Latency("e2e")
	// Overfill past the window: the old samples must be evicted.
	for i := 0; i < DefaultLatencyWindow; i++ {
		l.Record(100 * time.Millisecond)
	}
	for i := 0; i < DefaultLatencyWindow; i++ {
		l.Record(time.Millisecond)
	}
	if got := len(l.samples); got != DefaultLatencyWindow {
		t.Fatalf("retained %d samples, want window %d", got, DefaultLatencyWindow)
	}
	s := l.Snapshot()
	if s.Count != 2*DefaultLatencyWindow {
		t.Fatalf("Count = %d, want lifetime %d", s.Count, 2*DefaultLatencyWindow)
	}
	if s.AvgMS != 1 { // the 100ms samples were all evicted
		t.Fatalf("AvgMS = %v, want 1 over the retained window", s.AvgMS)
	}
	if s.MaxMS != 100 { // lifetime max survives eviction
		t.Fatalf("MaxMS = %v, want 100", s.MaxMS)
	}
}

// RecordStages runs per delivered notification: it must not allocate and
// must not touch the registry mutex (the stage recorders are pre-resolved
// fields), so it cannot contend with concurrent Snapshot/scrapes.
func TestRecordStagesHotPathNoAllocs(t *testing.T) {
	r := NewRegistry()
	if n := testing.AllocsPerRun(1000, func() { r.RecordStages(1, 2, 3, 4, 5) }); n != 0 {
		t.Fatalf("RecordStages allocates: %v allocs/op", n)
	}
}

// The per-event instrumentation path must stay allocation-free so it can
// sit on the PR 1 zero-alloc hot path.
func TestCounterHotPathNoAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hot")
	if n := testing.AllocsPerRun(1000, func() { c.Inc(); c.Add(3) }); n != 0 {
		t.Fatalf("Int.Add allocates: %v allocs/op", n)
	}
}

// BenchmarkCounterInc measures the registry's hot-path instrument: a single
// pre-resolved counter increment. It must stay allocation-free so the PR 1
// zero-allocation routing guarantees survive instrumentation.
func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench.counter")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}
