// Package quaestor implements the query-result caching layer of the
// Quaestor architecture (paper §4, §7; Gessert et al., VLDB 2017) on top of
// InvaliDB: pull-based query results are cached at the application server,
// and InvaliDB's low-latency change notifications invalidate stale entries
// the moment a write changes a result — the consistent query caching scheme
// that gave Baqend order-of-magnitude latency and throughput improvements
// for pull-based queries.
package quaestor

import (
	"fmt"
	"sync"
	"sync/atomic"

	"invalidb/internal/appserver"
	"invalidb/internal/core"
	"invalidb/internal/document"
	"invalidb/internal/query"
)

// Options tunes the cache.
type Options struct {
	// MaxEntries bounds the number of cached queries; the least recently
	// used entry is evicted beyond it. Default 1024.
	MaxEntries int
}

// Cache is an InvaliDB-invalidated query result cache.
type Cache struct {
	server *appserver.Server
	opts   Options

	mu      sync.Mutex
	entries map[uint64]*entry
	lru     []uint64 // least recently used first (small caches: linear is fine)

	hits          atomic.Uint64
	misses        atomic.Uint64
	invalidations atomic.Uint64
}

type entry struct {
	spec   query.Spec
	result []document.Document
	valid  bool
	sub    *appserver.Subscription
	done   chan struct{}
}

// New creates a cache over an application server.
func New(server *appserver.Server, opts Options) *Cache {
	if opts.MaxEntries <= 0 {
		opts.MaxEntries = 1024
	}
	return &Cache{server: server, opts: opts, entries: map[uint64]*entry{}}
}

// Stats reports cache effectiveness.
func (c *Cache) Stats() (hits, misses, invalidations uint64) {
	return c.hits.Load(), c.misses.Load(), c.invalidations.Load()
}

// Query serves a pull-based query through the cache. The bool reports
// whether the result came from cache. On a miss the query is executed,
// cached, and registered with InvaliDB for invalidation: any result change
// marks the entry stale, so the next read re-executes against the database.
func (c *Cache) Query(spec query.Spec) ([]document.Document, bool, error) {
	q, err := query.Compile(spec)
	if err != nil {
		return nil, false, err
	}
	hash := core.TenantQueryHash(c.server.Tenant(), q)

	c.mu.Lock()
	e, ok := c.entries[hash]
	if ok && e.valid {
		c.touchLocked(hash)
		result := e.result
		c.mu.Unlock()
		c.hits.Add(1)
		return result, true, nil
	}
	c.mu.Unlock()
	c.misses.Add(1)

	result, err := c.server.Query(spec)
	if err != nil {
		return nil, false, err
	}

	// Subscribe before taking the lock: registration bootstraps the result
	// set with a collection scan, and holding c.mu across that would stall
	// every concurrent cache read behind one slow bootstrap.
	sub, subErr := c.server.Subscribe(spec)

	c.mu.Lock()
	if e, ok = c.entries[hash]; ok {
		// Another miss installed this query while we subscribed. Revalidate
		// the winner's entry (its invalidation subscription is live) and
		// release the redundant subscription outside the lock.
		e.result = result
		e.valid = true
		c.touchLocked(hash)
		c.mu.Unlock()
		if subErr == nil {
			_ = sub.Close()
		}
		return result, false, nil
	}
	if subErr != nil {
		c.mu.Unlock()
		// Degraded mode: serve uncached rather than fail the read — the
		// pull-based path must survive a real-time outage (§5).
		return result, false, nil
	}
	e = &entry{spec: spec, result: result, valid: true, done: make(chan struct{}), sub: sub}
	c.entries[hash] = e
	c.lru = append(c.lru, hash)
	go c.watch(hash, e)
	c.evictLocked()
	c.mu.Unlock()
	return result, false, nil
}

// watch invalidates the entry whenever InvaliDB reports a result change.
func (c *Cache) watch(hash uint64, e *entry) {
	for {
		select {
		case <-e.done:
			return
		case ev, ok := <-e.sub.C():
			if !ok {
				return
			}
			switch ev.Type {
			case appserver.EventInitial:
				// The bootstrap snapshot; the cached pull result stands.
			case appserver.EventError:
				// Real-time path lost: drop the entry entirely so reads fall
				// back to the database.
				c.mu.Lock()
				c.dropLocked(hash)
				c.mu.Unlock()
				return
			default:
				c.invalidations.Add(1)
				c.mu.Lock()
				if cur := c.entries[hash]; cur == e {
					cur.valid = false
				}
				c.mu.Unlock()
			}
		}
	}
}

func (c *Cache) touchLocked(hash uint64) {
	for i, h := range c.lru {
		if h == hash {
			c.lru = append(c.lru[:i], c.lru[i+1:]...)
			c.lru = append(c.lru, hash)
			return
		}
	}
}

func (c *Cache) evictLocked() {
	for len(c.entries) > c.opts.MaxEntries && len(c.lru) > 0 {
		c.dropLocked(c.lru[0])
	}
}

func (c *Cache) dropLocked(hash uint64) {
	e, ok := c.entries[hash]
	if !ok {
		return
	}
	delete(c.entries, hash)
	for i, h := range c.lru {
		if h == hash {
			c.lru = append(c.lru[:i], c.lru[i+1:]...)
			break
		}
	}
	close(e.done)
	if e.sub != nil {
		_ = e.sub.Close()
	}
}

// Len returns the number of cached queries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Close drops all entries and their invalidation subscriptions.
func (c *Cache) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for hash := range c.entries {
		c.dropLocked(hash)
	}
	if len(c.entries) != 0 {
		return fmt.Errorf("quaestor: %d entries survived close", len(c.entries))
	}
	return nil
}
