package quaestor

import (
	"testing"
	"time"

	"invalidb/internal/appserver"
	"invalidb/internal/core"
	"invalidb/internal/document"
	"invalidb/internal/eventlayer"
	"invalidb/internal/query"
	"invalidb/internal/storage"
)

func newStack(t *testing.T) (*appserver.Server, *Cache) {
	t.Helper()
	bus := eventlayer.NewMemBus(eventlayer.MemBusOptions{})
	cluster, err := core.NewCluster(bus, core.Options{
		TickInterval:      20 * time.Millisecond,
		HeartbeatInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.Start(); err != nil {
		t.Fatal(err)
	}
	db := storage.Open(storage.Options{})
	srv, err := appserver.New(db, bus, appserver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cache := New(srv, Options{})
	t.Cleanup(func() {
		_ = cache.Close()
		_ = srv.Close()
		cluster.Stop()
		_ = bus.Close()
	})
	return srv, cache
}

func spec() query.Spec {
	return query.Spec{Collection: "articles", Filter: map[string]any{"year": map[string]any{"$gte": 2018}}}
}

func TestCacheHitAfterMiss(t *testing.T) {
	srv, cache := newStack(t)
	if err := srv.Insert("articles", document.Document{"_id": "1", "year": 2020}); err != nil {
		t.Fatal(err)
	}
	r1, cached, err := cache.Query(spec())
	if err != nil || cached {
		t.Fatalf("first read: cached=%v err=%v", cached, err)
	}
	if len(r1) != 1 {
		t.Fatalf("result = %v", r1)
	}
	r2, cached, err := cache.Query(spec())
	if err != nil || !cached {
		t.Fatalf("second read should hit: cached=%v err=%v", cached, err)
	}
	if len(r2) != 1 {
		t.Fatalf("cached result = %v", r2)
	}
	hits, misses, _ := cache.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats: hits=%d misses=%d", hits, misses)
	}
}

func TestInvalidationOnWrite(t *testing.T) {
	srv, cache := newStack(t)
	if err := srv.Insert("articles", document.Document{"_id": "1", "year": 2020}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cache.Query(spec()); err != nil {
		t.Fatal(err)
	}
	// A relevant write must invalidate: the next read re-executes and sees
	// the new record (no stale cache served).
	if err := srv.Insert("articles", document.Document{"_id": "2", "year": 2021}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		result, cached, err := cache.Query(spec())
		if err != nil {
			t.Fatal(err)
		}
		if len(result) == 2 {
			if cached {
				// Fresh data may be served from cache only after a
				// revalidating miss filled it; both orders are fine as long
				// as the data is current.
			}
			_, _, inv := cache.Stats()
			if inv == 0 {
				t.Fatal("no invalidation recorded despite result change")
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("cache kept serving stale result")
}

func TestIrrelevantWriteKeepsCacheValid(t *testing.T) {
	srv, cache := newStack(t)
	_ = srv.Insert("articles", document.Document{"_id": "1", "year": 2020})
	_, _, _ = cache.Query(spec())
	// A write outside the result must not invalidate.
	if err := srv.Insert("articles", document.Document{"_id": "old", "year": 1999}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond)
	_, cached, err := cache.Query(spec())
	if err != nil || !cached {
		t.Fatalf("irrelevant write invalidated the cache: cached=%v err=%v", cached, err)
	}
}

func TestEvictionBeyondMaxEntries(t *testing.T) {
	srv, cache := newStack(t)
	cache.opts.MaxEntries = 3
	for i := 0; i < 6; i++ {
		s := query.Spec{Collection: "articles", Filter: map[string]any{"year": 2000 + i}}
		if _, _, err := cache.Query(s); err != nil {
			t.Fatal(err)
		}
	}
	if cache.Len() > 3 {
		t.Fatalf("cache grew to %d entries, cap 3", cache.Len())
	}
	_ = srv // keep the stack alive
}

func TestBadQueryRejected(t *testing.T) {
	_, cache := newStack(t)
	if _, _, err := cache.Query(query.Spec{}); err == nil {
		t.Fatal("bad query accepted")
	}
}
