package gateway

import (
	"io"
	"net"
	"sync"
	"time"
)

// MemListener is an in-process net.Listener whose connections are pure
// byte pipes: no sockets, no file descriptors, no kernel buffers. It
// exists so the fan-out experiment can hold 100k+ concurrent clients on
// one box — real TCP would exhaust the fd limit and the ephemeral port
// range three orders of magnitude earlier. The pipes apply backpressure
// (a bounded buffer per direction), so slow-consumer behavior is
// faithful to a socket with a small send buffer.
type MemListener struct {
	ch   chan net.Conn
	done chan struct{}
	once sync.Once
	// BufSize is the per-direction pipe buffer in bytes; set before the
	// first Dial. Default 16 KiB.
	BufSize int
}

// NewMemListener creates an in-memory listener.
func NewMemListener() *MemListener {
	return &MemListener{ch: make(chan net.Conn), done: make(chan struct{})}
}

// Accept waits for the next Dial.
func (l *MemListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

// Close stops the listener. Established connections stay open.
func (l *MemListener) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}

// Addr returns a placeholder address.
func (l *MemListener) Addr() net.Addr { return memAddr{} }

// Dial opens a new connection to the listener, blocking until accepted.
func (l *MemListener) Dial() (net.Conn, error) {
	size := l.BufSize
	if size <= 0 {
		size = 16 << 10
	}
	a2b := newMemHalf(size)
	b2a := newMemHalf(size)
	client := &memConn{rd: b2a, wr: a2b}
	server := &memConn{rd: a2b, wr: b2a}
	select {
	case l.ch <- server:
		return client, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

type memAddr struct{}

func (memAddr) Network() string { return "mem" }
func (memAddr) String() string  { return "mem" }

// memHalf is one direction of a connection: a bounded byte buffer with
// blocking reads and writes.
type memHalf struct {
	mu     sync.Mutex
	cond   sync.Cond
	buf    []byte
	off    int
	max    int
	closed bool
}

func newMemHalf(max int) *memHalf {
	h := &memHalf{max: max}
	h.cond.L = &h.mu
	return h
}

func (h *memHalf) write(p []byte) (int, error) {
	n := 0
	h.mu.Lock()
	defer h.mu.Unlock()
	for len(p) > 0 {
		if h.closed {
			return n, io.ErrClosedPipe
		}
		avail := h.max - (len(h.buf) - h.off)
		if avail == 0 {
			h.cond.Wait()
			continue
		}
		if h.off > 0 && len(h.buf)+min(avail, len(p)) > h.max {
			// Compact so the append below stays within the budget.
			h.buf = h.buf[:copy(h.buf, h.buf[h.off:])]
			h.off = 0
		}
		chunk := min(avail, len(p))
		h.buf = append(h.buf, p[:chunk]...)
		p = p[chunk:]
		n += chunk
		h.cond.Broadcast()
	}
	return n, nil
}

func (h *memHalf) read(p []byte) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for len(h.buf) == h.off {
		if h.closed {
			return 0, io.EOF
		}
		h.cond.Wait()
	}
	n := copy(p, h.buf[h.off:])
	h.off += n
	if h.off == len(h.buf) {
		h.buf = h.buf[:0]
		h.off = 0
	}
	h.cond.Broadcast()
	return n, nil
}

func (h *memHalf) close() {
	h.mu.Lock()
	h.closed = true
	h.cond.Broadcast()
	h.mu.Unlock()
}

// memConn is one endpoint of an in-memory connection. Closing it tears
// down both directions: the peer's pending reads drain the buffered bytes
// and then see io.EOF, writes fail immediately. Deadlines are not
// implemented (the gateway and swarm never set them).
type memConn struct {
	rd, wr *memHalf
}

func (c *memConn) Read(p []byte) (int, error)  { return c.rd.read(p) }
func (c *memConn) Write(p []byte) (int, error) { return c.wr.write(p) }

func (c *memConn) Close() error {
	c.rd.close()
	c.wr.close()
	return nil
}

func (c *memConn) LocalAddr() net.Addr                { return memAddr{} }
func (c *memConn) RemoteAddr() net.Addr               { return memAddr{} }
func (c *memConn) SetDeadline(time.Time) error        { return nil }
func (c *memConn) SetReadDeadline(time.Time) error    { return nil }
func (c *memConn) SetWriteDeadline(time.Time) error   { return nil }
