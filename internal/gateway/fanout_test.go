package gateway

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"invalidb/internal/appserver"
	"invalidb/internal/core"
	"invalidb/internal/document"
	"invalidb/internal/eventlayer"
	"invalidb/internal/query"
	"invalidb/internal/storage"
)

// memStack is stack over a MemListener with explicit gateway options.
func memStack(t *testing.T, opts Options) (*Server, *appserver.Server, *MemListener) {
	t.Helper()
	bus := eventlayer.NewMemBus(eventlayer.MemBusOptions{})
	cluster, err := core.NewCluster(bus, core.Options{
		TickInterval:      20 * time.Millisecond,
		HeartbeatInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.Start(); err != nil {
		t.Fatal(err)
	}
	srv, err := appserver.New(storage.Open(storage.Options{}), bus, appserver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ln := NewMemListener()
	gw, err := ServeListener(srv, ln, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = gw.Close()
		_ = srv.Close()
		cluster.Stop()
		_ = bus.Close()
	})
	return gw, srv, ln
}

func dialMem(t *testing.T, ln *MemListener, opts ClientOptions) (*Client, error) {
	t.Helper()
	nc, err := ln.Dial()
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(nc, opts)
	if err != nil {
		return nil, err
	}
	t.Cleanup(func() { _ = c.Close() })
	return c, nil
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestGatewaySharedUpstreamRefcount is the refcount property test: for a
// range of N, N subscribes to the same query share ONE upstream
// subscription; N-1 unsubscribes keep it alive; the Nth closes it.
func TestGatewaySharedUpstreamRefcount(t *testing.T) {
	gw, _ := stack(t)
	c := dial(t, gw)
	spec := query.Spec{Collection: "rc", Filter: map[string]any{"x": int64(1)}}
	for _, n := range []int{1, 2, 7, 23} {
		ids := make([]string, n)
		for i := range ids {
			ids[i] = fmt.Sprintf("rc-%d-%d", n, i)
			if _, err := c.call(Request{Op: "subscribe", ID: ids[i], Query: &spec}); err != nil {
				t.Fatal(err)
			}
		}
		if q := gw.DistinctQueries(); q != 1 {
			t.Fatalf("n=%d: %d upstream queries after %d subscribes, want 1", n, q, n)
		}
		if s := gw.Subscriptions(); s != int64(n) {
			t.Fatalf("n=%d: Subscriptions = %d", n, s)
		}
		for _, id := range ids[:n-1] {
			if _, err := c.call(Request{Op: "unsubscribe", ID: id}); err != nil {
				t.Fatal(err)
			}
		}
		if q := gw.DistinctQueries(); q != 1 {
			t.Fatalf("n=%d: upstream torn down after %d of %d unsubscribes", n, n-1, n)
		}
		if _, err := c.call(Request{Op: "unsubscribe", ID: ids[n-1]}); err != nil {
			t.Fatal(err)
		}
		if q := gw.DistinctQueries(); q != 0 {
			t.Fatalf("n=%d: %d upstream queries after the last unsubscribe, want 0", n, q)
		}
	}
}

// TestGatewayConcurrentSubscribeUnsubscribeClose hammers one connection
// with concurrent subscribe/unsubscribe churn across two distinct queries
// plus a concurrent connection close; meaningful under -race (make race).
func TestGatewayConcurrentSubscribeUnsubscribeClose(t *testing.T) {
	gw, srv := stack(t)
	c := dial(t, gw)
	specs := []query.Spec{
		{Collection: "st", Filter: map[string]any{"x": int64(1)}},
		{Collection: "st", Filter: map[string]any{"x": int64(2)}},
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			spec := specs[w%len(specs)]
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := fmt.Sprintf("w%d-%d", w, i)
				if _, err := c.call(Request{Op: "subscribe", ID: id, Query: &spec}); err != nil {
					return // connection closed under us: expected
				}
				if _, err := c.call(Request{Op: "unsubscribe", ID: id}); err != nil {
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = srv.Upsert("st", fmt.Sprintf("k%d", i%8), map[string]any{"$set": map[string]any{"x": int64(1 + i%2)}})
			time.Sleep(time.Millisecond)
		}
	}()
	time.Sleep(300 * time.Millisecond)
	_ = c.Close() // close the conn while churn is in flight
	close(stop)
	wg.Wait()
	waitFor(t, "full teardown", func() bool {
		return gw.Clients() == 0 && gw.DistinctQueries() == 0 && gw.Subscriptions() == 0
	})
}

// TestGatewayEncodeOnceCounters pins the tentpole invariant: one insert
// delivered to K subscribers costs exactly one body serialization and K
// fanned deliveries.
func TestGatewayEncodeOnceCounters(t *testing.T) {
	gw, _ := stack(t)
	c := dial(t, gw)
	const k = 32
	spec := query.Spec{Collection: "eo", Filter: map[string]any{"x": int64(1)}}
	subs := make([]*ClientSub, k)
	for i := range subs {
		sub, err := c.Subscribe(spec)
		if err != nil {
			t.Fatal(err)
		}
		subs[i] = sub
	}
	for _, sub := range subs {
		recvFrame(t, sub, "initial")
	}
	encoded0, fanned0 := gw.mEncoded.Value(), gw.mFanned.Value()
	if err := c.Insert("eo", document.Document{"_id": "k1", "x": int64(1)}); err != nil {
		t.Fatal(err)
	}
	for _, sub := range subs {
		if r := recvFrame(t, sub, "add"); r.Key != "k1" {
			t.Fatalf("add = %+v", r)
		}
	}
	if d := gw.mEncoded.Value() - encoded0; d != 1 {
		t.Fatalf("event encoded %d times for %d subscribers, want exactly 1", d, k)
	}
	if d := gw.mFanned.Value() - fanned0; d != k {
		t.Fatalf("fanned %d deliveries, want %d", d, k)
	}
	if r := gw.DedupRatio(); r != k {
		t.Fatalf("DedupRatio = %v, want %d", r, k)
	}
}

// TestGatewaySlowClientShedAndResync: a client that stops reading blows
// through its byte budget, data events are shed, and when it resumes it
// receives a resync marker carrying the cumulative drop count, after which
// live events flow again.
func TestGatewaySlowClientShedAndResync(t *testing.T) {
	gw, srv, ln := memStack(t, Options{OutBudget: 2048})
	nc, err := ln.Dial()
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	enc := json.NewEncoder(nc)
	spec := query.Spec{Collection: "slow", Filter: map[string]any{"x": int64(1)}}
	if err := enc.Encode(Request{Op: "subscribe", ID: "s", Query: &spec}); err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReaderSize(nc, 1<<10)
	waitLine := func(substr string) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %q on the wire", substr)
			}
			line, err := r.ReadSlice('\n')
			for err == bufio.ErrBufferFull {
				if bytes.Contains(line, []byte(substr)) {
					return
				}
				line, err = r.ReadSlice('\n')
			}
			if err != nil {
				t.Fatalf("read: %v (waiting for %q)", err, substr)
			}
			if bytes.Contains(line, []byte(substr)) {
				return
			}
		}
	}
	waitLine(`"type":"initial"`)

	// Stop reading; flood until the budget forces sheds.
	drops0 := gw.mDrops.Value()
	deadline := time.Now().Add(10 * time.Second)
	i := 0
	for gw.mDrops.Value() == drops0 {
		if time.Now().After(deadline) {
			t.Fatal("no events were shed despite a stalled reader")
		}
		if err := srv.Insert("slow", document.Document{"_id": fmt.Sprintf("d%05d", i), "x": int64(1)}); err != nil {
			t.Fatal(err)
		}
		i++
	}

	// Resume reading: the retained backlog ends with the resync marker.
	waitLine(`"op":"resync"`)

	// The connection is still live: a fresh event lands (retry inserts —
	// early ones may still be shed while the backlog drains).
	got := make(chan struct{})
	go func() {
		waitLine(`"key":"after-resync`)
		close(got)
	}()
	for j := 0; ; j++ {
		if err := srv.Insert("slow", document.Document{"_id": fmt.Sprintf("after-resync-%d", j), "x": int64(1)}); err != nil {
			t.Fatal(err)
		}
		select {
		case <-got:
			if gw.mResyncs.Value() == 0 {
				t.Fatal("resync marker not counted")
			}
			return
		case <-time.After(100 * time.Millisecond):
		}
		if j > 100 {
			t.Fatal("no live events after resync")
		}
	}
}

// TestGatewayTenantQuotas proves a noisy tenant is bounded while others
// are untouched.
func TestGatewayTenantQuotas(t *testing.T) {
	gw, _, ln := memStack(t, Options{Quota: func(tenant string) Quota {
		if tenant == "noisy" {
			return Quota{MaxConns: 2, MaxSubs: 1}
		}
		return Quota{}
	}})
	n1, err := dialMem(t, ln, ClientOptions{Tenant: "noisy"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dialMem(t, ln, ClientOptions{Tenant: "noisy"}); err != nil {
		t.Fatal(err)
	}
	if _, err := dialMem(t, ln, ClientOptions{Tenant: "noisy"}); err == nil {
		t.Fatal("third noisy connection admitted past MaxConns=2")
	}
	if gw.mRejected.Value() == 0 {
		t.Fatal("rejection not counted")
	}

	spec := query.Spec{Collection: "q", Filter: map[string]any{"x": int64(1)}}
	if _, err := n1.call(Request{Op: "subscribe", ID: "a", Query: &spec}); err != nil {
		t.Fatal(err)
	}
	if _, err := n1.call(Request{Op: "subscribe", ID: "b", Query: &spec}); err == nil {
		t.Fatal("second noisy subscription admitted past MaxSubs=1")
	}
	// Releasing the slot re-admits.
	if _, err := n1.call(Request{Op: "unsubscribe", ID: "a"}); err != nil {
		t.Fatal(err)
	}
	if _, err := n1.call(Request{Op: "subscribe", ID: "c", Query: &spec}); err != nil {
		t.Fatal(err)
	}

	// The default tenant is not starved by the noisy one.
	d, err := dialMem(t, ln, ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := d.call(Request{Op: "subscribe", ID: fmt.Sprintf("d%d", i), Query: &spec}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestGatewayConnRateQuota exercises the TryTake-based admission rate.
func TestGatewayConnRateQuota(t *testing.T) {
	_, _, ln := memStack(t, Options{Quota: func(tenant string) Quota {
		if tenant == "bursty" {
			return Quota{ConnRate: 1, ConnBurst: 2}
		}
		return Quota{}
	}})
	admitted, rejected := 0, 0
	for i := 0; i < 5; i++ {
		if _, err := dialMem(t, ln, ClientOptions{Tenant: "bursty"}); err != nil {
			rejected++
		} else {
			admitted++
		}
	}
	if admitted < 2 || rejected == 0 {
		t.Fatalf("admitted=%d rejected=%d; want the 2-token burst admitted and the tail rejected", admitted, rejected)
	}
}

func TestMemConn(t *testing.T) {
	ln := NewMemListener()
	defer ln.Close()
	type accepted struct {
		nc  net.Conn
		err error
	}
	acc := make(chan accepted, 1)
	go func() {
		nc, err := ln.Accept()
		acc <- accepted{nc, err}
	}()
	client, err := ln.Dial()
	if err != nil {
		t.Fatal(err)
	}
	a := <-acc
	if a.err != nil {
		t.Fatal(a.err)
	}
	server := a.nc

	if _, err := client.Write([]byte("ping\n")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	n, err := server.Read(buf)
	if err != nil || string(buf[:n]) != "ping\n" {
		t.Fatalf("server read %q, %v", buf[:n], err)
	}
	if _, err := server.Write([]byte("pong\n")); err != nil {
		t.Fatal(err)
	}
	n, err = client.Read(buf)
	if err != nil || string(buf[:n]) != "pong\n" {
		t.Fatalf("client read %q, %v", buf[:n], err)
	}

	// Close tears down both directions: buffered bytes drain, then EOF.
	if _, err := server.Write([]byte("tail")); err != nil {
		t.Fatal(err)
	}
	_ = server.Close()
	n, err = client.Read(buf)
	if err != nil || string(buf[:n]) != "tail" {
		t.Fatalf("drain read %q, %v", buf[:n], err)
	}
	if _, err := client.Read(buf); err == nil {
		t.Fatal("read after peer close did not EOF")
	}
	if _, err := client.Write([]byte("x")); err == nil {
		t.Fatal("write to closed peer accepted")
	}
}

// TestMemConnBackpressure pins the bounded-pipe property the swarm relies
// on: a writer cannot outrun an absent reader by more than the pipe size.
func TestMemConnBackpressure(t *testing.T) {
	ln := NewMemListener()
	defer ln.Close()
	ln.BufSize = 1024
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		_ = nc // never reads
	}()
	client, err := ln.Dial()
	if err != nil {
		t.Fatal(err)
	}
	wrote := make(chan int, 1)
	go func() {
		n, _ := client.Write(make([]byte, 4096))
		wrote <- n
	}()
	select {
	case n := <-wrote:
		t.Fatalf("4096B write to a 1024B pipe completed (%d bytes) with no reader", n)
	case <-time.After(200 * time.Millisecond):
	}
	_ = client.Close()
	select {
	case <-wrote:
	case <-time.After(2 * time.Second):
		t.Fatal("blocked write never unwound after close")
	}
}
