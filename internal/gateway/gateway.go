// Package gateway implements the client-facing proxy of the production
// architecture (paper Figure 1 and §7.2): end-user devices — web and mobile
// apps — connect to a proxy that multiplexes their real-time query
// subscriptions over the application server. Each application server at
// Baqend holds a single WebSocket connection to such a proxy; subscriptions
// are fanned out per client with the client-generated subscription id
// tagging every change notification (paper §5, footnote 2).
//
// The wire protocol is newline-delimited JSON over TCP (a WebSocket
// stand-in): requests carry an op ("subscribe", "unsubscribe", "insert",
// "update", "delete", "query") and responses carry events or results tagged
// with the request's id.
package gateway

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"invalidb/internal/appserver"
	"invalidb/internal/document"
	"invalidb/internal/query"
)

// Request is one client frame.
type Request struct {
	Op string `json:"op"`
	// ID tags subscriptions and correlates responses.
	ID string `json:"id,omitempty"`
	// Query for "subscribe" and "query".
	Query *query.Spec `json:"query,omitempty"`
	// Collection/Key/Doc/Update for write operations.
	Collection string            `json:"collection,omitempty"`
	Key        string            `json:"key,omitempty"`
	Doc        document.Document `json:"doc,omitempty"`
	Update     map[string]any    `json:"update,omitempty"`
}

// Response is one server frame.
type Response struct {
	Op string `json:"op"` // "event", "result", "ok", "error"
	ID string `json:"id,omitempty"`
	// Event payload.
	Type  string              `json:"type,omitempty"`
	Key   string              `json:"key,omitempty"`
	Doc   document.Document   `json:"doc,omitempty"`
	Docs  []document.Document `json:"docs,omitempty"`
	Index int                 `json:"index,omitempty"`
	// Error payload.
	Message string `json:"message,omitempty"`
}

// Server is the gateway listener.
type Server struct {
	srv *appserver.Server
	ln  net.Listener

	mu     sync.Mutex
	conns  map[*conn]struct{}
	closed bool
	wg     sync.WaitGroup

	clients atomic.Int64
}

// Serve starts a gateway for the application server on addr
// ("127.0.0.1:0" picks a port).
func Serve(srv *appserver.Server, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("gateway: listen: %w", err)
	}
	g := &Server{srv: srv, ln: ln, conns: map[*conn]struct{}{}}
	g.wg.Add(1)
	go g.acceptLoop()
	return g, nil
}

// Addr returns the gateway's listen address.
func (g *Server) Addr() string { return g.ln.Addr().String() }

// Clients reports currently connected end-user clients.
func (g *Server) Clients() int64 { return g.clients.Load() }

// Close stops the listener and disconnects all clients. The application
// server is left running.
func (g *Server) Close() error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil
	}
	g.closed = true
	conns := make([]*conn, 0, len(g.conns))
	for c := range g.conns {
		conns = append(conns, c)
	}
	g.mu.Unlock()
	err := g.ln.Close()
	for _, c := range conns {
		c.close()
	}
	g.wg.Wait()
	return err
}

func (g *Server) acceptLoop() {
	defer g.wg.Done()
	for {
		nc, err := g.ln.Accept()
		if err != nil {
			return
		}
		c := &conn{g: g, nc: nc, subs: map[string]*appserver.Subscription{}, out: make(chan Response, 1024)}
		g.mu.Lock()
		if g.closed {
			g.mu.Unlock()
			_ = nc.Close()
			return
		}
		g.conns[c] = struct{}{}
		g.mu.Unlock()
		g.clients.Add(1)
		g.wg.Add(2)
		go c.readLoop()
		go c.writeLoop()
	}
}

// conn is one end-user client connection.
type conn struct {
	g  *Server
	nc net.Conn

	mu     sync.Mutex
	subs   map[string]*appserver.Subscription // client subscription id -> sub
	closed bool
	out    chan Response
	done   sync.Once
}

func (c *conn) close() {
	c.done.Do(func() {
		c.mu.Lock()
		c.closed = true
		subs := make([]*appserver.Subscription, 0, len(c.subs))
		for _, s := range c.subs {
			subs = append(subs, s)
		}
		c.subs = map[string]*appserver.Subscription{}
		close(c.out)
		c.mu.Unlock()
		for _, s := range subs {
			_ = s.Close()
		}
		_ = c.nc.Close()
		c.g.mu.Lock()
		delete(c.g.conns, c)
		c.g.mu.Unlock()
		c.g.clients.Add(-1)
	})
}

// send enqueues a response; a slow client loses the oldest frame rather than
// stalling the gateway (clients detect gaps and re-sync with a pull query,
// exactly like the paper's weak devices discussion in §8.1).
func (c *conn) send(r Response) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	select {
	case c.out <- r:
		return
	default:
	}
	select {
	case <-c.out:
	default:
	}
	select {
	case c.out <- r:
	default:
	}
}

func (c *conn) writeLoop() {
	defer c.g.wg.Done()
	w := bufio.NewWriterSize(c.nc, 1<<16)
	enc := json.NewEncoder(w)
	for r := range c.out {
		if err := enc.Encode(&r); err != nil {
			c.close()
			return
		}
		if len(c.out) == 0 {
			if err := w.Flush(); err != nil {
				c.close()
				return
			}
		}
	}
	_ = w.Flush()
}

func (c *conn) readLoop() {
	defer c.g.wg.Done()
	defer c.close()
	dec := json.NewDecoder(bufio.NewReaderSize(c.nc, 1<<16))
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				c.send(Response{Op: "error", Message: "malformed frame: " + err.Error()})
			}
			return
		}
		c.handle(&req)
	}
}

func (c *conn) handle(req *Request) {
	switch req.Op {
	case "subscribe":
		c.handleSubscribe(req)
	case "unsubscribe":
		c.mu.Lock()
		sub := c.subs[req.ID]
		delete(c.subs, req.ID)
		c.mu.Unlock()
		if sub != nil {
			_ = sub.Close()
		}
		c.send(Response{Op: "ok", ID: req.ID})
	case "query":
		if req.Query == nil {
			c.send(Response{Op: "error", ID: req.ID, Message: "query missing"})
			return
		}
		docs, err := c.g.srv.Query(*req.Query)
		if err != nil {
			c.send(Response{Op: "error", ID: req.ID, Message: err.Error()})
			return
		}
		c.send(Response{Op: "result", ID: req.ID, Docs: docs})
	case "insert":
		c.reply(req, c.g.srv.Insert(req.Collection, req.Doc))
	case "update":
		c.reply(req, c.g.srv.Update(req.Collection, req.Key, req.Update))
	case "delete":
		c.reply(req, c.g.srv.Delete(req.Collection, req.Key))
	default:
		c.send(Response{Op: "error", ID: req.ID, Message: fmt.Sprintf("unknown op %q", req.Op)})
	}
}

func (c *conn) reply(req *Request, err error) {
	if err != nil {
		c.send(Response{Op: "error", ID: req.ID, Message: err.Error()})
		return
	}
	c.send(Response{Op: "ok", ID: req.ID})
}

func (c *conn) handleSubscribe(req *Request) {
	if req.Query == nil || req.ID == "" {
		c.send(Response{Op: "error", ID: req.ID, Message: "subscribe needs id and query"})
		return
	}
	c.mu.Lock()
	if _, dup := c.subs[req.ID]; dup {
		c.mu.Unlock()
		c.send(Response{Op: "error", ID: req.ID, Message: "duplicate subscription id"})
		return
	}
	c.mu.Unlock()
	sub, err := c.g.srv.Subscribe(*req.Query)
	if err != nil {
		c.send(Response{Op: "error", ID: req.ID, Message: err.Error()})
		return
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		_ = sub.Close()
		return
	}
	c.subs[req.ID] = sub
	c.mu.Unlock()
	c.send(Response{Op: "ok", ID: req.ID})
	c.g.wg.Add(1)
	go c.pump(req.ID, sub)
}

// pump forwards subscription events to the client, tagged with the client's
// subscription id.
func (c *conn) pump(id string, sub *appserver.Subscription) {
	defer c.g.wg.Done()
	for ev := range sub.C() {
		r := Response{Op: "event", ID: id, Type: ev.Type.String(), Key: ev.Key, Doc: ev.Doc, Index: ev.Index}
		if ev.Type == appserver.EventInitial {
			r.Docs = ev.Docs
		}
		if ev.Type == appserver.EventError && ev.Err != nil {
			r.Message = ev.Err.Error()
		}
		c.send(r)
	}
}
