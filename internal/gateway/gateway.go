// Package gateway implements the client-facing proxy of the production
// architecture (paper Figure 1 and §7.2): end-user devices — web and mobile
// apps — connect to a proxy that multiplexes their real-time query
// subscriptions over the application server. Each application server at
// Baqend holds a single WebSocket connection to such a proxy; subscriptions
// are fanned out per client with the client-generated subscription id
// tagging every change notification (paper §5, footnote 2).
//
// Real-time query results are shared: thousands of devices subscribe to the
// same query, so delivery cost must scale with distinct queries, not
// clients. The gateway therefore runs a shared fan-out engine (DESIGN.md
// §14): client subscriptions with the same query dedupe onto one upstream
// appserver.Subscription per distinct query, keyed by the tenant-scoped
// fixed64 query hash and refcounted so the last unsubscribe tears the
// upstream down. Each event is encoded exactly once per query — the shared
// JSON body is serialized a single time and broadcast by splicing only the
// per-client subscription id into a reusable frame header — and delivery is
// parallelized across sharded fan-out workers. Per-client outbound queues
// are byte-budgeted: a slow consumer sheds data events (newest first) and
// receives a resync marker so it can repair with a pull query, mirroring
// the broker's session-drop discipline.
//
// The wire protocol is newline-delimited JSON over TCP (a WebSocket
// stand-in): requests carry an op ("hello", "subscribe", "unsubscribe",
// "insert", "update", "delete", "query") and responses carry events or
// results tagged with the request's id, plus "resync" markers after shed
// events.
package gateway

import (
	"fmt"
	"math"
	"net"
	"runtime"
	"sync"
	"sync/atomic"

	"invalidb/internal/appserver"
	"invalidb/internal/document"
	"invalidb/internal/metrics"
	"invalidb/internal/query"
	"invalidb/internal/ratelimit"
)

// Request is one client frame.
type Request struct {
	Op string `json:"op"`
	// ID tags subscriptions and correlates responses.
	ID string `json:"id,omitempty"`
	// Tenant identifies the application on a "hello" frame; connections
	// that skip hello run under the appserver's tenant.
	Tenant string `json:"tenant,omitempty"`
	// Query for "subscribe" and "query".
	Query *query.Spec `json:"query,omitempty"`
	// Collection/Key/Doc/Update for write operations.
	Collection string            `json:"collection,omitempty"`
	Key        string            `json:"key,omitempty"`
	Doc        document.Document `json:"doc,omitempty"`
	Update     map[string]any    `json:"update,omitempty"`
}

// Response is one server frame.
type Response struct {
	Op string `json:"op"` // "event", "result", "ok", "error", "resync"
	ID string `json:"id,omitempty"`
	// Event payload.
	Type  string              `json:"type,omitempty"`
	Key   string              `json:"key,omitempty"`
	Doc   document.Document   `json:"doc,omitempty"`
	Docs  []document.Document `json:"docs,omitempty"`
	Index int                 `json:"index,omitempty"`
	// Error payload.
	Message string `json:"message,omitempty"`
	// Dropped is the connection's cumulative shed-event count, carried on
	// "resync" frames: the client saw a gap and should repair with a pull
	// query (paper §8.1, weak devices).
	Dropped uint64 `json:"dropped,omitempty"`
}

// Quota bounds one tenant's footprint on the gateway. Zero fields are
// unlimited.
type Quota struct {
	// MaxConns caps concurrently admitted connections.
	MaxConns int
	// MaxSubs caps concurrently active subscriptions across the tenant's
	// connections.
	MaxSubs int
	// ConnRate admits at most this many new connections per second
	// (ConnBurst tokens of headroom, minimum 1).
	ConnRate  float64
	ConnBurst float64
	// SubRate admits at most this many new subscriptions per second
	// (SubBurst tokens of headroom, minimum 1).
	SubRate  float64
	SubBurst float64
}

// Options tunes the gateway.
type Options struct {
	// Metrics receives the gateway's counters and gauges. Nil creates a
	// private registry (read back via Server.Metrics). Passing the
	// appserver's registry folds the gateway into the same -obs-addr
	// endpoint.
	Metrics *metrics.Registry
	// OutBudget is the per-connection outbound queue budget in bytes.
	// Once pending bytes exceed it, data events are shed (newest first)
	// and a resync marker is delivered. Default 64 KiB.
	OutBudget int
	// ReadBuffer is the per-connection read buffer size. Default 4 KiB —
	// small, because at 100k connections every KiB here is 100 MB.
	ReadBuffer int
	// FanOutShards is the number of delivery workers event broadcast is
	// sharded across. Default min(GOMAXPROCS, 8); 1 delivers inline on
	// the pump goroutine.
	FanOutShards int
	// Quota maps a tenant name to its admission quota. Nil means no
	// limits. The function is consulted once per tenant, at first sight.
	Quota func(tenant string) Quota
	// Logf receives operational log lines (first-drop notices, quota
	// rejections). Nil discards them.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.OutBudget <= 0 {
		o.OutBudget = 64 << 10
	}
	if o.ReadBuffer <= 0 {
		o.ReadBuffer = 4 << 10
	}
	if o.FanOutShards <= 0 {
		o.FanOutShards = runtime.GOMAXPROCS(0)
		if o.FanOutShards > 8 {
			o.FanOutShards = 8
		}
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// tenantState tracks one tenant's live footprint and rate limiters.
// Counters are guarded by Server.mu; the buckets lock themselves.
type tenantState struct {
	q          Quota
	conns      int
	subs       int
	rejected   int64
	connBucket *ratelimit.Bucket
	subBucket  *ratelimit.Bucket
}

// Server is the gateway listener plus the shared fan-out engine.
type Server struct {
	srv  *appserver.Server
	ln   net.Listener
	opts Options

	mu      sync.Mutex
	conns   map[*conn]struct{}
	queries map[uint64]*sharedQuery // query hash -> shared upstream
	tenants map[string]*tenantState
	closed  bool

	wg     sync.WaitGroup // accept loop, per-conn loops, fan-out workers
	pumpWG sync.WaitGroup // per-sharedQuery pump goroutines
	done   chan struct{}  // closed after all pumps exit; stops workers

	fanJobs []chan fanJob // workers for shards 1..FanOutShards-1

	clients   atomic.Int64
	subsTotal atomic.Int64
	connSeq   atomic.Uint64

	reg         *metrics.Registry
	mFanned     *metrics.Int // events delivered (or shed) across all clients
	mEncoded    *metrics.Int // event bodies serialized (once per query per event)
	mBytesSaved *metrics.Int // body bytes NOT re-serialized thanks to sharing
	mDrops      *metrics.Int // data events shed on slow connections
	mResyncs    *metrics.Int // resync markers delivered
	mRejected   *metrics.Int // quota-rejected connections and subscriptions
}

// Serve starts a gateway for the application server on addr
// ("127.0.0.1:0" picks a port).
func Serve(srv *appserver.Server, addr string) (*Server, error) {
	return ServeOptions(srv, addr, Options{})
}

// ServeOptions is Serve with explicit options.
func ServeOptions(srv *appserver.Server, addr string, opts Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("gateway: listen: %w", err)
	}
	return ServeListener(srv, ln, opts)
}

// ServeListener runs the gateway on an existing listener — e.g. a
// MemListener, which is how the fan-out experiment packs 100k+ mock
// clients onto one box without consuming file descriptors.
func ServeListener(srv *appserver.Server, ln net.Listener, opts Options) (*Server, error) {
	opts = opts.withDefaults()
	g := &Server{
		srv:     srv,
		ln:      ln,
		opts:    opts,
		conns:   map[*conn]struct{}{},
		queries: map[uint64]*sharedQuery{},
		tenants: map[string]*tenantState{},
		done:    make(chan struct{}),
	}
	g.registerMetrics()
	for i := 1; i < opts.FanOutShards; i++ {
		ch := make(chan fanJob, 1)
		g.fanJobs = append(g.fanJobs, ch)
		g.wg.Add(1)
		go g.fanWorker(ch)
	}
	g.wg.Add(1)
	go g.acceptLoop()
	return g, nil
}

func (g *Server) registerMetrics() {
	reg := g.opts.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	g.reg = reg
	g.mFanned = reg.Counter("gateway.events.fanout")
	g.mEncoded = reg.Counter("gateway.events.encoded")
	g.mBytesSaved = reg.Counter("gateway.encode.bytes_saved")
	g.mDrops = reg.Counter("gateway.client.drops")
	g.mResyncs = reg.Counter("gateway.client.resyncs")
	g.mRejected = reg.Counter("gateway.quota.rejected")
	reg.Gauge("gateway.clients", func() float64 { return float64(g.clients.Load()) })
	reg.Gauge("gateway.subscriptions", func() float64 { return float64(g.subsTotal.Load()) })
	reg.Gauge("gateway.queries", func() float64 { return float64(g.DistinctQueries()) })
	reg.Gauge("gateway.dedup_ratio", func() float64 { return g.DedupRatio() })
	reg.Collect(func(emit func(name string, v float64)) {
		g.mu.Lock()
		defer g.mu.Unlock()
		for name, ts := range g.tenants {
			emit("gateway.tenant."+name+".conns", float64(ts.conns))
			emit("gateway.tenant."+name+".subs", float64(ts.subs))
			emit("gateway.tenant."+name+".rejected", float64(ts.rejected))
		}
	})
}

// Addr returns the gateway's listen address.
func (g *Server) Addr() string { return g.ln.Addr().String() }

// Metrics returns the registry the gateway reports into.
func (g *Server) Metrics() *metrics.Registry { return g.reg }

// Clients reports currently connected end-user clients.
func (g *Server) Clients() int64 { return g.clients.Load() }

// Subscriptions reports currently active client subscriptions.
func (g *Server) Subscriptions() int64 { return g.subsTotal.Load() }

// DistinctQueries reports live upstream subscriptions — one per distinct
// query, regardless of how many clients share each.
func (g *Server) DistinctQueries() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.queries)
}

// DedupRatio is client subscriptions per upstream subscription — the
// fan-out sharing factor (1000 clients on 1 query reads as 1000).
func (g *Server) DedupRatio() float64 {
	subs := g.subsTotal.Load()
	q := g.DistinctQueries()
	if q == 0 {
		return 0
	}
	r := float64(subs) / float64(q)
	if math.IsNaN(r) {
		return 0
	}
	return r
}

// Close stops the listener and disconnects all clients. The application
// server is left running.
func (g *Server) Close() error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil
	}
	g.closed = true
	conns := make([]*conn, 0, len(g.conns))
	for c := range g.conns {
		conns = append(conns, c)
	}
	g.mu.Unlock()
	err := g.ln.Close()
	for _, c := range conns {
		c.close()
	}
	// Closing every conn released every shared query, which closed every
	// upstream; wait for the pumps (they may still be mid-broadcast and
	// waiting on fan-out workers), then stop the workers.
	g.pumpWG.Wait()
	close(g.done)
	g.wg.Wait()
	return err
}

func (g *Server) acceptLoop() {
	defer g.wg.Done()
	for {
		nc, err := g.ln.Accept()
		if err != nil {
			return
		}
		nShards := g.opts.FanOutShards
		c := &conn{
			g:     g,
			nc:    nc,
			shard: int(g.connSeq.Add(1)) % nShards,
			subs:  map[string]*sharedQuery{},
		}
		c.outCond.L = &c.outMu
		g.mu.Lock()
		if g.closed {
			g.mu.Unlock()
			_ = nc.Close()
			return
		}
		g.conns[c] = struct{}{}
		g.mu.Unlock()
		g.clients.Add(1)
		g.wg.Add(2)
		go c.readLoop()
		go c.writeLoop()
	}
}

// tenantFor returns the tenant's state, creating it (and its buckets,
// sized from Options.Quota) on first sight. Callers hold g.mu.
func (g *Server) tenantFor(name string) *tenantState {
	ts := g.tenants[name]
	if ts != nil {
		return ts
	}
	ts = &tenantState{}
	if g.opts.Quota != nil {
		ts.q = g.opts.Quota(name)
		if ts.q.ConnRate > 0 {
			ts.connBucket = ratelimit.New(ts.q.ConnRate, admissionBurst(ts.q.ConnRate, ts.q.ConnBurst))
		}
		if ts.q.SubRate > 0 {
			ts.subBucket = ratelimit.New(ts.q.SubRate, admissionBurst(ts.q.SubRate, ts.q.SubBurst))
		}
	}
	g.tenants[name] = ts
	return ts
}

// admissionBurst floors the burst at one token: TryTake never overdraws,
// so a sub-token burst (ratelimit's 5% default at low rates) would reject
// everything forever.
func admissionBurst(rate, burst float64) float64 {
	if burst <= 0 {
		burst = rate * ratelimit.DefaultBurstFraction
	}
	if burst < 1 {
		burst = 1
	}
	return burst
}

// admitConn runs the tenant quota check for a connection's first frame.
// A rejected connection gets one error frame (echoing the frame's request
// id so synchronous clients fail fast) and is closed once it drains.
func (g *Server) admitConn(c *conn, tenant, reqID string) bool {
	if tenant == "" {
		tenant = g.srv.Tenant()
	}
	g.mu.Lock()
	ts := g.tenantFor(tenant)
	ok := ts.q.MaxConns <= 0 || ts.conns < ts.q.MaxConns
	if ok && ts.connBucket != nil && !ts.connBucket.TryTake(1) {
		ok = false
	}
	if ok {
		ts.conns++
	} else {
		ts.rejected++
	}
	g.mu.Unlock()
	c.mu.Lock()
	c.tenant = tenant
	c.admitted = ok
	c.mu.Unlock()
	if !ok {
		g.mRejected.Inc()
		g.opts.Logf("gateway: tenant %q connection rejected by quota", tenant)
		c.sendError(reqID, "tenant connection quota exceeded")
		c.closeWhenDrained()
	}
	return ok
}

// admitSub reserves one subscription slot for the connection's tenant.
func (g *Server) admitSub(c *conn) bool {
	g.mu.Lock()
	ts := g.tenantFor(c.tenant)
	ok := ts.q.MaxSubs <= 0 || ts.subs < ts.q.MaxSubs
	if ok && ts.subBucket != nil && !ts.subBucket.TryTake(1) {
		ok = false
	}
	if ok {
		ts.subs++
	} else {
		ts.rejected++
	}
	g.mu.Unlock()
	if ok {
		g.subsTotal.Add(1)
	} else {
		g.mRejected.Inc()
	}
	return ok
}

// releaseSub returns a subscription slot.
func (g *Server) releaseSub(tenant string) {
	g.mu.Lock()
	if ts := g.tenants[tenant]; ts != nil && ts.subs > 0 {
		ts.subs--
	}
	g.mu.Unlock()
	g.subsTotal.Add(-1)
}

// dropConn unregisters a closed connection.
func (g *Server) dropConn(c *conn, tenant string, admitted bool) {
	g.mu.Lock()
	delete(g.conns, c)
	if admitted {
		if ts := g.tenants[tenant]; ts != nil && ts.conns > 0 {
			ts.conns--
		}
	}
	g.mu.Unlock()
	g.clients.Add(-1)
}
