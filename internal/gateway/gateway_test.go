package gateway

import (
	"fmt"
	"testing"
	"time"

	"invalidb/internal/appserver"
	"invalidb/internal/core"
	"invalidb/internal/document"
	"invalidb/internal/eventlayer"
	"invalidb/internal/query"
	"invalidb/internal/storage"
)

// stack wires bus + cluster + app server + gateway.
func stack(t *testing.T) (*Server, *appserver.Server) {
	t.Helper()
	bus := eventlayer.NewMemBus(eventlayer.MemBusOptions{})
	cluster, err := core.NewCluster(bus, core.Options{
		TickInterval:      20 * time.Millisecond,
		HeartbeatInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.Start(); err != nil {
		t.Fatal(err)
	}
	srv, err := appserver.New(storage.Open(storage.Options{}), bus, appserver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	gw, err := Serve(srv, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = gw.Close()
		_ = srv.Close()
		cluster.Stop()
		_ = bus.Close()
	})
	return gw, srv
}

func dial(t *testing.T, gw *Server) *Client {
	t.Helper()
	c, err := DialClient(gw.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func recvFrame(t *testing.T, sub *ClientSub, typ string) Response {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case r, ok := <-sub.C():
			if !ok {
				t.Fatalf("subscription closed while waiting for %q", typ)
			}
			if r.Type == typ {
				return r
			}
			if r.Type == "error" {
				t.Fatalf("error frame while waiting for %q: %s", typ, r.Message)
			}
		case <-deadline:
			t.Fatalf("timed out waiting for %q frame", typ)
		}
	}
}

func TestGatewayEndToEnd(t *testing.T) {
	gw, _ := stack(t)
	c := dial(t, gw)

	if err := c.Insert("articles", document.Document{"_id": "1", "year": 2020}); err != nil {
		t.Fatal(err)
	}
	sub, err := c.Subscribe(query.Spec{
		Collection: "articles",
		Filter:     map[string]any{"year": map[string]any{"$gte": 2018}},
	})
	if err != nil {
		t.Fatal(err)
	}
	init := recvFrame(t, sub, "initial")
	if len(init.Docs) != 1 {
		t.Fatalf("initial = %v", init.Docs)
	}
	if err := c.Insert("articles", document.Document{"_id": "2", "year": 2021}); err != nil {
		t.Fatal(err)
	}
	add := recvFrame(t, sub, "add")
	if add.Key != "2" || add.Doc["year"] != int64(2021) {
		t.Fatalf("add frame = %+v", add)
	}
	if err := c.Update("articles", "2", map[string]any{"$set": map[string]any{"year": 2022}}); err != nil {
		t.Fatal(err)
	}
	recvFrame(t, sub, "change")
	if err := c.Delete("articles", "2"); err != nil {
		t.Fatal(err)
	}
	recvFrame(t, sub, "remove")

	// Pull-based query over the same connection.
	docs, err := c.Query(query.Spec{Collection: "articles"})
	if err != nil || len(docs) != 1 {
		t.Fatalf("query: %v %v", docs, err)
	}
}

func TestGatewayMultipleClientsIndependentSubscriptions(t *testing.T) {
	gw, _ := stack(t)
	alice := dial(t, gw)
	bob := dial(t, gw)
	deadline := time.Now().Add(2 * time.Second)
	for gw.Clients() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("Clients = %d", gw.Clients())
		}
		time.Sleep(2 * time.Millisecond)
	}
	subA, err := alice.Subscribe(query.Spec{Collection: "c", Filter: map[string]any{"x": 1}})
	if err != nil {
		t.Fatal(err)
	}
	subB, err := bob.Subscribe(query.Spec{Collection: "c", Filter: map[string]any{"x": 1}})
	if err != nil {
		t.Fatal(err)
	}
	recvFrame(t, subA, "initial")
	recvFrame(t, subB, "initial")
	if err := alice.Insert("c", document.Document{"_id": "k", "x": 1}); err != nil {
		t.Fatal(err)
	}
	if r := recvFrame(t, subA, "add"); r.Key != "k" {
		t.Fatal("alice missed the add")
	}
	if r := recvFrame(t, subB, "add"); r.Key != "k" {
		t.Fatal("bob missed the add")
	}
	// Bob unsubscribes; Alice keeps receiving.
	if err := subB.Close(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if err := alice.Update("c", "k", map[string]any{"$set": map[string]any{"note": 1}}); err != nil {
		t.Fatal(err)
	}
	recvFrame(t, subA, "change")
	select {
	case r, ok := <-subB.C():
		if ok && r.Type != "" {
			t.Fatalf("bob received %+v after unsubscribe", r)
		}
	case <-time.After(100 * time.Millisecond):
	}
}

func TestGatewaySortedQueryFrames(t *testing.T) {
	gw, _ := stack(t)
	c := dial(t, gw)
	for i := 0; i < 5; i++ {
		if err := c.Insert("s", document.Document{"_id": fmt.Sprint(i), "n": i}); err != nil {
			t.Fatal(err)
		}
	}
	sub, err := c.Subscribe(query.Spec{
		Collection: "s",
		Sort:       []query.SortKey{{Path: "n", Desc: true}},
		Limit:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	init := recvFrame(t, sub, "initial")
	if len(init.Docs) != 2 || init.Docs[0]["n"] != int64(4) {
		t.Fatalf("initial window = %v", init.Docs)
	}
	if err := c.Insert("s", document.Document{"_id": "top", "n": 99}); err != nil {
		t.Fatal(err)
	}
	// The window-diff protocol emits removes before adds.
	if rm := recvFrame(t, sub, "remove"); rm.Key != "3" {
		t.Fatalf("pushed-out frame = %+v", rm)
	}
	add := recvFrame(t, sub, "add")
	if add.Key != "top" || add.Index != 0 {
		t.Fatalf("sorted add frame = %+v", add)
	}
}

func TestGatewayErrorFrames(t *testing.T) {
	gw, _ := stack(t)
	c := dial(t, gw)
	// Bad subscribe: no query.
	if _, err := c.call(Request{Op: "subscribe", ID: "x"}); err == nil {
		t.Fatal("subscribe without query accepted")
	}
	// Unknown op.
	if _, err := c.call(Request{Op: "frobnicate", ID: "y"}); err == nil {
		t.Fatal("unknown op accepted")
	}
	// Write errors surface.
	if err := c.Insert("c", document.Document{"x": 1}); err == nil {
		t.Fatal("insert without _id accepted")
	}
	if err := c.Delete("c", "missing"); err == nil {
		t.Fatal("delete of missing key accepted")
	}
	// Duplicate subscription id: the first is acknowledged, the second is
	// rejected.
	spec := query.Spec{Collection: "c"}
	if _, err := c.call(Request{Op: "subscribe", ID: "dup", Query: &spec}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.call(Request{Op: "subscribe", ID: "dup", Query: &spec}); err == nil {
		t.Fatal("duplicate subscription id accepted")
	}
}

func TestGatewayClientCloseCleansUpServerSide(t *testing.T) {
	gw, srv := stack(t)
	c := dial(t, gw)
	sub, err := c.Subscribe(query.Spec{Collection: "c", Filter: map[string]any{"x": 1}})
	if err != nil {
		t.Fatal(err)
	}
	recvFrame(t, sub, "initial")
	_ = c.Close()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if gw.Clients() == 0 {
			// The server-side subscription was closed with the connection: a
			// write produces no panic and the subscription count drops.
			if err := srv.Insert("c", document.Document{"_id": "after", "x": 1}); err != nil {
				t.Fatal(err)
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("client connection never cleaned up")
}
