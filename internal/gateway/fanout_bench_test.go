package gateway

import (
	"encoding/json"
	"fmt"
	"net"
	"testing"
	"time"

	"invalidb/internal/appserver"
	"invalidb/internal/document"
)

// discardConn swallows writes instantly, isolating the fan-out engine
// from socket throughput.
type discardConn struct{}

func (discardConn) Read(p []byte) (int, error)  { select {} }
func (discardConn) Write(p []byte) (int, error) { return len(p), nil }
func (discardConn) Close() error                { return nil }
func (discardConn) LocalAddr() net.Addr         { return memAddr{} }
func (discardConn) RemoteAddr() net.Addr        { return memAddr{} }
func (discardConn) SetDeadline(time.Time) error { return nil }
func (discardConn) SetReadDeadline(time.Time) error  { return nil }
func (discardConn) SetWriteDeadline(time.Time) error { return nil }

// newFanoutHarness builds a bare fan-out engine (no listener, no
// appserver): one shared query with `targets` subscribers over discard
// connections with live write loops.
func newFanoutHarness(targets, shards int) (*Server, *sharedQuery, []*conn, func()) {
	g := &Server{
		opts:    Options{OutBudget: 1 << 20, ReadBuffer: 1 << 10, FanOutShards: shards, Logf: func(string, ...any) {}},
		conns:   map[*conn]struct{}{},
		queries: map[uint64]*sharedQuery{},
		tenants: map[string]*tenantState{},
		done:    make(chan struct{}),
	}
	g.registerMetrics()
	for i := 1; i < shards; i++ {
		ch := make(chan fanJob, 1)
		g.fanJobs = append(g.fanJobs, ch)
		g.wg.Add(1)
		go g.fanWorker(ch)
	}
	sq := &sharedQuery{
		g:        g,
		shards:   make([][]fanTarget, shards),
		snapshot: make([][]fanTarget, shards),
	}
	sq.enc = json.NewEncoder(&sq.bodyBuf)
	conns := make([]*conn, targets)
	for i := range conns {
		c := &conn{g: g, nc: discardConn{}, shard: i % shards, subs: map[string]*sharedQuery{}}
		c.outCond.L = &c.outMu
		g.wg.Add(1)
		go c.writeLoop()
		sq.add(c, fmt.Sprintf("sub-%d", i))
		conns[i] = c
	}
	cleanup := func() {
		for _, c := range conns {
			c.outMu.Lock()
			c.wclosed = true
			c.outCond.Broadcast()
			c.outMu.Unlock()
		}
		close(g.done)
		g.wg.Wait()
	}
	return g, sq, conns, cleanup
}

func benchEvent() appserver.Event {
	return appserver.Event{
		Type:  appserver.EventAdd,
		Key:   "k000042",
		Doc:   document.Document{"_id": "k000042", "random": int64(7), "sentNs": int64(1700000000000000000)},
		Index: -1,
	}
}

// BenchmarkGatewayFanOut measures broadcast cost as subscriber count
// grows: the body is encoded once, so per-delivery cost is a header
// splice (run via bench-smoke).
func BenchmarkGatewayFanOut(b *testing.B) {
	for _, targets := range []int{1, 64, 1024} {
		b.Run(fmt.Sprintf("subs=%d", targets), func(b *testing.B) {
			_, sq, _, cleanup := newFanoutHarness(targets, 1)
			defer cleanup()
			ev := benchEvent()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sq.broadcast(&ev)
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)*float64(targets)/b.Elapsed().Seconds(), "deliveries/s")
		})
	}
}

// TestGatewayFanOutPerDeliveryAllocs pins the encode-once claim with hard
// numbers: across a broadcast to 256 subscribers, the body is serialized
// exactly once and amortized allocations stay far below one per delivered
// event (the old per-client-marshal design paid ~10 per delivery).
func TestGatewayFanOutPerDeliveryAllocs(t *testing.T) {
	const targets = 256
	g, sq, _, cleanup := newFanoutHarness(targets, 1)
	defer cleanup()
	ev := benchEvent()
	for i := 0; i < 64; i++ { // warm the queue buffers
		sq.broadcast(&ev)
	}
	encoded0, fanned0 := g.mEncoded.Value(), g.mFanned.Value()
	const runs = 200
	allocs := testing.AllocsPerRun(runs, func() {
		sq.broadcast(&ev)
	})
	perDelivery := allocs / targets
	if perDelivery > 0.25 {
		t.Fatalf("%.3f allocs per delivered event (%.1f per broadcast); encode-once regressed", perDelivery, allocs)
	}
	encoded := g.mEncoded.Value() - encoded0
	fanned := g.mFanned.Value() - fanned0
	if encoded < runs || encoded > runs+2 {
		t.Fatalf("encoded %d bodies across ~%d broadcasts; want one per broadcast", encoded, runs)
	}
	if fanned != encoded*targets {
		t.Fatalf("fanned %d deliveries for %d encodes x %d subscribers", fanned, encoded, targets)
	}
	if g.mDrops.Value() != 0 {
		t.Fatalf("%d events shed during the alloc test; budget miscalibrated", g.mDrops.Value())
	}
}
