package gateway

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"sync"
)

// conn is one end-user client connection. Outbound frames go through a
// byte-budgeted double buffer instead of a channel of Responses: pending
// bytes are appended under outMu and swapped wholesale into the writer, so
// a connection's queued memory is bounded by OutBudget (plus one in-flight
// batch) no matter how far the client falls behind. When the budget is
// exceeded, data events are shed (newest first, O(1)) and a resync marker
// is appended after the retained backlog — exactly where the gap is —
// mirroring the broker's session-drop discipline.
type conn struct {
	g     *Server
	nc    net.Conn
	shard int

	// greeted is true once the first frame ran tenant admission. Only the
	// readLoop touches it.
	greeted bool

	mu       sync.Mutex
	subs     map[string]*sharedQuery // client subscription id -> shared upstream
	tenant   string
	admitted bool
	closed   bool

	outMu        sync.Mutex
	outCond      sync.Cond
	pending      []byte // frames queued since the last writer swap
	writing      []byte // frames the writer is flushing (reused as next pending)
	wclosed      bool
	closeOnDrain bool
	needResync   bool
	dropped      uint64 // cumulative shed data events

	done sync.Once
}

func (c *conn) close() {
	c.done.Do(func() {
		c.mu.Lock()
		c.closed = true
		tenant, admitted := c.tenant, c.admitted
		subs := c.subs
		c.subs = map[string]*sharedQuery{}
		c.mu.Unlock()
		c.outMu.Lock()
		c.wclosed = true
		c.outCond.Broadcast()
		c.outMu.Unlock()
		_ = c.nc.Close()
		for id, sq := range subs {
			sq.remove(c, id)
			c.g.release(sq)
			c.g.releaseSub(tenant)
		}
		c.g.dropConn(c, tenant, admitted)
	})
}

// closeWhenDrained asks the write loop to flush what is queued and then
// close the connection — used to deliver a quota-rejection error before
// hanging up.
func (c *conn) closeWhenDrained() {
	c.outMu.Lock()
	c.closeOnDrain = true
	c.outCond.Signal()
	c.outMu.Unlock()
}

// enqueueEvent appends one pre-encoded event frame (constant header +
// cached subscription id + shared body suffix) to the outbound queue.
// Over-budget connections shed the event and are marked for a resync
// marker. This is the fan-out hot path: three appends and a cond signal,
// no marshalling, no allocation beyond buffer growth.
//
//invalidb:hotpath
func (c *conn) enqueueEvent(idJSON, suffix []byte) bool {
	c.outMu.Lock()
	if c.wclosed {
		c.outMu.Unlock()
		return false
	}
	if len(c.pending)+len(eventHead)+len(idJSON)+len(suffix) > c.g.opts.OutBudget {
		//invalidb:allow hotpathalloc shedding is off the steady-state path; the first drop logs once per connection
		c.shedLocked()
		c.outMu.Unlock()
		return false
	}
	c.pending = append(c.pending, eventHead...)
	c.pending = append(c.pending, idJSON...)
	c.pending = append(c.pending, suffix...)
	c.outCond.Signal()
	c.outMu.Unlock()
	return true
}

// shedLocked records one shed data event. Callers hold c.outMu.
func (c *conn) shedLocked() {
	c.dropped++
	c.needResync = true
	c.g.mDrops.Inc()
	if c.dropped == 1 {
		c.g.opts.Logf("gateway: slow client %s over %dB outbound budget: shedding events, resync marker pending",
			c.nc.RemoteAddr(), c.g.opts.OutBudget)
	}
	c.outCond.Signal()
}

// enqueueControlFrame is enqueueEvent without the budget check, for
// lifecycle events (initial, error, disconnected, reconnected) delivered
// through the broadcast path: they are what a client resynchronizes from,
// so they must land even on an over-budget connection.
func (c *conn) enqueueControlFrame(idJSON, suffix []byte) {
	c.outMu.Lock()
	if !c.wclosed {
		c.pending = append(c.pending, eventHead...)
		c.pending = append(c.pending, idJSON...)
		c.pending = append(c.pending, suffix...)
		c.outCond.Signal()
	}
	c.outMu.Unlock()
}

// enqueueControl appends a frame that must not be shed: acks, errors,
// results, initial results, and lifecycle events. Control traffic is
// bounded by the request rate and result sizes, so it may overshoot the
// byte budget without threatening per-client memory.
func (c *conn) enqueueControl(frame []byte) {
	c.outMu.Lock()
	if !c.wclosed {
		c.pending = append(c.pending, frame...)
		c.outCond.Signal()
	}
	c.outMu.Unlock()
}

func (c *conn) send(r *Response) {
	data, err := json.Marshal(r)
	if err != nil {
		return
	}
	c.enqueueControl(append(data, '\n'))
}

func (c *conn) sendError(id, msg string) {
	c.send(&Response{Op: "error", ID: id, Message: msg})
}

var resyncHead = []byte(`{"op":"resync","dropped":`)

func (c *conn) writeLoop() {
	defer c.g.wg.Done()
	c.outMu.Lock()
	for {
		for len(c.pending) == 0 && !c.needResync && !c.wclosed && !c.closeOnDrain {
			c.outCond.Wait()
		}
		if c.wclosed {
			c.outMu.Unlock()
			return
		}
		c.pending, c.writing = c.writing[:0], c.pending
		resync, dropped := c.needResync, c.dropped
		c.needResync = false
		finish := c.closeOnDrain
		c.outMu.Unlock()
		buf := c.writing
		if resync {
			// The shed events were newer than everything retained in this
			// batch, so the marker lands exactly at the gap.
			buf = append(buf, resyncHead...)
			buf = strconv.AppendUint(buf, dropped, 10)
			buf = append(buf, '}', '\n')
			c.writing = buf
			c.g.mResyncs.Inc()
		}
		if len(buf) > 0 {
			if _, err := c.nc.Write(buf); err != nil {
				c.close()
				return
			}
		}
		if finish {
			c.close()
			return
		}
		c.outMu.Lock()
	}
}

func (c *conn) readLoop() {
	defer c.g.wg.Done()
	defer c.close()
	dec := json.NewDecoder(bufio.NewReaderSize(c.nc, c.g.opts.ReadBuffer))
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				c.sendError("", "malformed frame: "+err.Error())
			}
			return
		}
		c.handle(&req)
	}
}

func (c *conn) handle(req *Request) {
	if !c.greeted {
		c.greeted = true
		tenant := ""
		if req.Op == "hello" {
			tenant = req.Tenant
		}
		if !c.g.admitConn(c, tenant, req.ID) {
			return
		}
	}
	c.mu.Lock()
	admitted := c.admitted
	c.mu.Unlock()
	if !admitted {
		// The connection is draining its quota-rejection notice; ignore
		// everything the client pipelined behind the first frame.
		return
	}
	switch req.Op {
	case "hello":
		c.mu.Lock()
		mismatch := req.Tenant != "" && req.Tenant != c.tenant
		c.mu.Unlock()
		if mismatch {
			c.sendError(req.ID, "tenant already set for this connection")
			return
		}
		c.send(&Response{Op: "ok", ID: req.ID})
	case "subscribe":
		c.handleSubscribe(req)
	case "unsubscribe":
		c.mu.Lock()
		sq := c.subs[req.ID]
		delete(c.subs, req.ID)
		tenant := c.tenant
		c.mu.Unlock()
		if sq != nil {
			sq.remove(c, req.ID)
			c.g.release(sq)
			c.g.releaseSub(tenant)
		}
		c.send(&Response{Op: "ok", ID: req.ID})
	case "query":
		if req.Query == nil {
			c.sendError(req.ID, "query missing")
			return
		}
		docs, err := c.g.srv.Query(*req.Query)
		if err != nil {
			c.sendError(req.ID, err.Error())
			return
		}
		c.send(&Response{Op: "result", ID: req.ID, Docs: docs})
	case "insert":
		c.reply(req, c.g.srv.Insert(req.Collection, req.Doc))
	case "update":
		c.reply(req, c.g.srv.Update(req.Collection, req.Key, req.Update))
	case "delete":
		c.reply(req, c.g.srv.Delete(req.Collection, req.Key))
	default:
		c.sendError(req.ID, fmt.Sprintf("unknown op %q", req.Op))
	}
}

func (c *conn) reply(req *Request, err error) {
	if err != nil {
		c.sendError(req.ID, err.Error())
		return
	}
	c.send(&Response{Op: "ok", ID: req.ID})
}

func (c *conn) handleSubscribe(req *Request) {
	if req.Query == nil || req.ID == "" {
		c.sendError(req.ID, "subscribe needs id and query")
		return
	}
	c.mu.Lock()
	_, dup := c.subs[req.ID]
	tenant := c.tenant
	c.mu.Unlock()
	if dup {
		c.sendError(req.ID, "duplicate subscription id")
		return
	}
	if !c.g.admitSub(c) {
		c.g.opts.Logf("gateway: tenant %q subscription rejected by quota", tenant)
		c.sendError(req.ID, "tenant subscription quota exceeded")
		return
	}
	sq, err := c.g.acquire(*req.Query)
	if err != nil {
		c.g.releaseSub(tenant)
		c.sendError(req.ID, err.Error())
		return
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		c.g.release(sq)
		c.g.releaseSub(tenant)
		return
	}
	c.subs[req.ID] = sq
	c.mu.Unlock()
	// The ack is enqueued before the subscriber is registered, so it
	// precedes the initial result and every event.
	c.send(&Response{Op: "ok", ID: req.ID})
	sq.add(c, req.ID)
}
