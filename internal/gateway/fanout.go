package gateway

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"

	"invalidb/internal/appserver"
	"invalidb/internal/document"
	"invalidb/internal/query"
)

// eventHead is the constant prefix of every fanned-out event frame; the
// per-client subscription id and the shared body suffix are spliced after
// it, so broadcasting to N clients costs one body serialization plus N
// byte copies.
var eventHead = []byte(`{"op":"event","id":`)

// fanTarget is one client subscription attached to a shared query. The
// subscription id is cached pre-encoded (JSON string), so the hot path
// never touches encoding/json.
type fanTarget struct {
	c      *conn
	id     string
	idJSON []byte
}

// fanJob is one shard's slice of a broadcast, handed to a fan-out worker.
type fanJob struct {
	sq      *sharedQuery
	targets []fanTarget
	suffix  []byte
	control bool
}

// sharedQuery is the fan-out engine's unit of sharing: one upstream
// appserver.Subscription serving every client subscription with the same
// tenant-scoped query hash. It is refcounted — acquire on subscribe,
// release on unsubscribe/disconnect — and the last release closes the
// upstream, which terminates the pump.
type sharedQuery struct {
	g    *Server
	hash uint64

	// refs is guarded by g.mu (acquire/release run under it).
	refs int

	// initDone closes once the upstream subscribe finished; initErr is the
	// failure, if any. Late acquirers of an in-flight shared query park
	// here instead of racing the bootstrap.
	initDone chan struct{}
	initErr  error
	upstream *appserver.Subscription

	mu     sync.Mutex
	shards [][]fanTarget // subscriber lists, indexed by conn shard
	ready  bool          // true once the upstream delivered EventInitial

	// Pump-local scratch, touched only by the single pump goroutine: the
	// reusable body encoder and the per-shard snapshot taken under mu so
	// delivery runs without holding it.
	body     eventBody
	bodyBuf  bytes.Buffer
	enc      *json.Encoder
	suffix   []byte
	snapshot [][]fanTarget
	inflight sync.WaitGroup
}

// eventBody is the shared, per-event-encoded part of an event frame. Field
// names and order match Response so spliced frames decode identically.
type eventBody struct {
	Type  string              `json:"type,omitempty"`
	Key   string              `json:"key,omitempty"`
	Doc   document.Document   `json:"doc,omitempty"`
	Docs  []document.Document `json:"docs,omitempty"`
	Index int                 `json:"index,omitempty"`
	Message string            `json:"message,omitempty"`
}

// acquire returns the shared query for spec, creating the upstream
// subscription if this is the first reference. Concurrent acquirers of a
// new query share one bootstrap: the creator subscribes upstream while the
// rest wait on initDone.
func (g *Server) acquire(spec query.Spec) (*sharedQuery, error) {
	hash, err := g.srv.QueryHash(spec)
	if err != nil {
		return nil, err
	}
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil, fmt.Errorf("gateway: server closed")
	}
	if sq := g.queries[hash]; sq != nil {
		sq.refs++
		g.mu.Unlock()
		<-sq.initDone
		if sq.initErr != nil {
			g.release(sq)
			return nil, sq.initErr
		}
		return sq, nil
	}
	nShards := g.opts.FanOutShards
	sq := &sharedQuery{
		g:        g,
		hash:     hash,
		refs:     1,
		initDone: make(chan struct{}),
		shards:   make([][]fanTarget, nShards),
		snapshot: make([][]fanTarget, nShards),
	}
	sq.enc = json.NewEncoder(&sq.bodyBuf)
	g.queries[hash] = sq
	g.mu.Unlock()

	// The bootstrap query runs outside g.mu: it can be slow, and other
	// queries' subscribes must not serialize behind it.
	up, err := g.srv.Subscribe(spec)
	if err != nil {
		sq.initErr = err
		close(sq.initDone)
		g.release(sq)
		return nil, err
	}
	sq.upstream = up
	close(sq.initDone)
	g.pumpWG.Add(1)
	go sq.pump()
	return sq, nil
}

// release drops one reference; the last reference tears the upstream down
// and forgets the query.
func (g *Server) release(sq *sharedQuery) {
	g.mu.Lock()
	sq.refs--
	last := sq.refs == 0
	if last && g.queries[sq.hash] == sq {
		delete(g.queries, sq.hash)
	}
	g.mu.Unlock()
	if last {
		<-sq.initDone
		if sq.upstream != nil {
			_ = sq.upstream.Close()
		}
	}
}

// add attaches a client subscription. If the upstream already delivered
// its initial result, an equivalent EventInitial is synthesized from the
// maintained result under sq.mu, so no event published after this point
// can be missed (an event already folded into Result but still in flight
// on the broadcast path may arrive twice; per-key events are idempotent,
// so clients converge).
func (sq *sharedQuery) add(c *conn, id string) {
	idJSON, err := json.Marshal(id)
	if err != nil {
		return
	}
	sq.mu.Lock()
	if sq.ready {
		docs := sq.upstream.Result()
		if data, err := json.Marshal(&Response{Op: "event", ID: id, Type: initialType, Docs: docs, Index: -1}); err == nil {
			c.enqueueControl(append(data, '\n'))
		}
	}
	sq.shards[c.shard] = append(sq.shards[c.shard], fanTarget{c: c, id: id, idJSON: idJSON})
	sq.mu.Unlock()
	// Re-check against a concurrent conn.close: if it copied c.subs before
	// our registration landed, its removal pass missed us.
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		sq.remove(c, id)
	}
}

// remove detaches a client subscription. Removing an absent target is a
// no-op, which the add/close race above relies on.
func (sq *sharedQuery) remove(c *conn, id string) {
	sq.mu.Lock()
	s := sq.shards[c.shard]
	for i := range s {
		if s[i].c == c && s[i].id == id {
			s[i] = s[len(s)-1]
			sq.shards[c.shard] = s[:len(s)-1]
			break
		}
	}
	sq.mu.Unlock()
}

// pump drains the shared upstream subscription and broadcasts each event.
// It exits when the last release closes the upstream.
func (sq *sharedQuery) pump() {
	defer sq.g.pumpWG.Done()
	for ev := range sq.upstream.C() {
		sq.broadcast(&ev)
	}
}

var initialType = appserver.EventInitial.String()

// broadcast serializes the event body exactly once, snapshots the
// subscriber lists under sq.mu, and delivers per-client frames — shard 0
// inline on the pump goroutine, the rest on the fan-out workers.
func (sq *sharedQuery) broadcast(ev *appserver.Event) {
	sq.encode(ev)
	// Lifecycle frames (initial result, errors, disconnect/reconnect) must
	// reach every client even when over budget: they are what a client
	// resynchronizes from.
	control := true
	switch ev.Type {
	case appserver.EventAdd, appserver.EventChange, appserver.EventChangeIndex, appserver.EventRemove:
		control = false
	}
	sq.mu.Lock()
	if ev.Type == appserver.EventInitial || ev.Type == appserver.EventReconnected {
		sq.ready = true
	}
	total := 0
	for i, s := range sq.shards {
		sq.snapshot[i] = append(sq.snapshot[i][:0], s...)
		total += len(s)
	}
	sq.mu.Unlock()
	if total == 0 {
		return
	}
	for i := 1; i < len(sq.snapshot); i++ {
		if len(sq.snapshot[i]) == 0 {
			continue
		}
		sq.inflight.Add(1)
		sq.g.fanJobs[i-1] <- fanJob{sq: sq, targets: sq.snapshot[i], suffix: sq.suffix, control: control}
	}
	deliver(sq.snapshot[0], sq.suffix, control)
	sq.inflight.Wait()
	sq.g.mFanned.Add(int64(total))
	sq.g.mBytesSaved.Add(int64(total-1) * int64(len(sq.suffix)))
}

// encode serializes the event body once into the reusable suffix buffer:
// everything after the per-client id, comma included, newline terminated.
func (sq *sharedQuery) encode(ev *appserver.Event) {
	sq.body = eventBody{Type: ev.Type.String(), Key: ev.Key, Doc: ev.Doc, Index: ev.Index}
	if ev.Type == appserver.EventInitial || ev.Type == appserver.EventReconnected {
		sq.body.Docs = ev.Docs
	}
	if ev.Err != nil && (ev.Type == appserver.EventError || ev.Type == appserver.EventDisconnected) {
		sq.body.Message = ev.Err.Error()
	}
	sq.bodyBuf.Reset()
	if err := sq.enc.Encode(&sq.body); err != nil {
		sq.bodyBuf.Reset()
		sq.bodyBuf.WriteString("{}\n")
	}
	body := sq.bodyBuf.Bytes() // "{...}\n" — Encode appends the newline
	sq.suffix = sq.suffix[:0]
	if len(body) <= 3 { // empty body "{}\n": no fields to splice after the id
		sq.suffix = append(sq.suffix, '}', '\n')
	} else {
		sq.suffix = append(sq.suffix, ',')
		sq.suffix = append(sq.suffix, body[1:]...)
	}
	sq.g.mEncoded.Inc()
}

// deliver splices head+id+suffix into each target's outbound queue.
//
//invalidb:hotpath
func deliver(targets []fanTarget, suffix []byte, control bool) {
	for i := range targets {
		if control {
			t := &targets[i]
			t.c.enqueueControlFrame(t.idJSON, suffix)
			continue
		}
		t := &targets[i]
		t.c.enqueueEvent(t.idJSON, suffix)
	}
}

// fanWorker delivers broadcast jobs for one shard. Workers only stop once
// every pump has exited (Close closes done strictly after pumpWG), so a
// job already accepted is always fully delivered.
func (g *Server) fanWorker(jobs chan fanJob) {
	defer g.wg.Done()
	for {
		select {
		case j := <-jobs:
			deliver(j.targets, j.suffix, j.control)
			j.sq.inflight.Done()
		case <-g.done:
			return
		}
	}
}
