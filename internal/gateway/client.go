package gateway

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"invalidb/internal/document"
	"invalidb/internal/query"
)

// Client is an end-user device's connection to a gateway — the counterpart
// of the web/mobile SDK in the paper's architecture.
type Client struct {
	nc  net.Conn
	enc *json.Encoder
	w   *bufio.Writer

	mu      sync.Mutex
	subs    map[string]*ClientSub
	pending map[string]chan Response // request id -> reply slot
	closed  bool
	nextID  atomic.Uint64
	wg      sync.WaitGroup

	// Timeout bounds synchronous calls. Default 5s.
	Timeout time.Duration

	resyncs atomic.Uint64
}

// ClientOptions tunes DialClientOptions.
type ClientOptions struct {
	// Tenant is announced with a synchronous "hello" before any other
	// frame; the gateway runs its per-tenant quota admission against it.
	// Empty runs under the appserver's tenant.
	Tenant string
	// Timeout bounds synchronous calls (and the hello). Default 5s.
	Timeout time.Duration
}

// DialClient connects to a gateway.
func DialClient(addr string) (*Client, error) {
	return DialClientOptions(addr, ClientOptions{})
}

// DialClientOptions is DialClient with an explicit tenant identity. The
// returned error carries the gateway's quota rejection, if any.
func DialClientOptions(addr string, opts ClientOptions) (*Client, error) {
	nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("gateway: dial: %w", err)
	}
	return NewClient(nc, opts)
}

// NewClient wraps an established connection (e.g. from MemListener.Dial)
// in a gateway client, performing the tenant hello when one is set.
func NewClient(nc net.Conn, opts ClientOptions) (*Client, error) {
	w := bufio.NewWriterSize(nc, 1<<14)
	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	c := &Client{
		nc:      nc,
		w:       w,
		enc:     json.NewEncoder(w),
		subs:    map[string]*ClientSub{},
		pending: map[string]chan Response{},
		Timeout: timeout,
	}
	c.wg.Add(1)
	go c.readLoop()
	if opts.Tenant != "" {
		if _, err := c.call(Request{Op: "hello", ID: c.newID("req"), Tenant: opts.Tenant}); err != nil {
			_ = c.Close()
			return nil, err
		}
	}
	return c, nil
}

// Resyncs reports resync markers received: each one means the gateway shed
// events because this client fell behind, and the client should repair
// affected subscriptions with a pull query (paper §8.1).
func (c *Client) Resyncs() uint64 { return c.resyncs.Load() }

// Close disconnects from the gateway; server-side subscriptions are torn
// down by the gateway.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	for _, s := range c.subs {
		s.closeInner()
	}
	c.subs = map[string]*ClientSub{}
	for _, ch := range c.pending {
		close(ch)
	}
	c.pending = map[string]chan Response{}
	c.mu.Unlock()
	err := c.nc.Close()
	c.wg.Wait()
	return err
}

// ClientSub is one real-time query subscription held by the device.
type ClientSub struct {
	id     string
	c      *Client
	events chan Response
	closed bool
}

// ID returns the client-generated subscription identifier.
func (s *ClientSub) ID() string { return s.id }

// C streams event frames ("initial", "add", "change", "changeIndex",
// "remove", "error").
func (s *ClientSub) C() <-chan Response { return s.events }

// Close unsubscribes.
func (s *ClientSub) Close() error {
	s.c.mu.Lock()
	if _, active := s.c.subs[s.id]; !active {
		s.c.mu.Unlock()
		return nil
	}
	delete(s.c.subs, s.id)
	s.closeInnerLocked()
	closed := s.c.closed
	s.c.mu.Unlock()
	if closed {
		return nil
	}
	_, err := s.c.call(Request{Op: "unsubscribe", ID: s.id})
	return err
}

func (s *ClientSub) closeInner() {
	s.closeInnerLocked()
}

func (s *ClientSub) closeInnerLocked() {
	if !s.closed {
		s.closed = true
		close(s.events)
	}
}

func (c *Client) newID(prefix string) string {
	return fmt.Sprintf("%s-%d", prefix, c.nextID.Add(1))
}

// Subscribe opens a real-time query subscription. The first frame on the
// returned channel carries the initial result.
func (c *Client) Subscribe(spec query.Spec) (*ClientSub, error) {
	id := c.newID("sub")
	sub := &ClientSub{id: id, c: c, events: make(chan Response, 1024)}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, fmt.Errorf("gateway: client closed")
	}
	c.subs[id] = sub
	err := c.write(Request{Op: "subscribe", ID: id, Query: &spec})
	c.mu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.subs, id)
		c.mu.Unlock()
		return nil, err
	}
	return sub, nil
}

// Insert writes a document through the gateway.
func (c *Client) Insert(collection string, doc document.Document) error {
	_, err := c.call(Request{Op: "insert", ID: c.newID("req"), Collection: collection, Doc: doc})
	return err
}

// Update applies a MongoDB update document.
func (c *Client) Update(collection, key string, update map[string]any) error {
	_, err := c.call(Request{Op: "update", ID: c.newID("req"), Collection: collection, Key: key, Update: update})
	return err
}

// Delete removes a document.
func (c *Client) Delete(collection, key string) error {
	_, err := c.call(Request{Op: "delete", ID: c.newID("req"), Collection: collection, Key: key})
	return err
}

// Query executes a pull-based query.
func (c *Client) Query(spec query.Spec) ([]document.Document, error) {
	r, err := c.call(Request{Op: "query", ID: c.newID("req"), Query: &spec})
	if err != nil {
		return nil, err
	}
	return r.Docs, nil
}

// call performs a synchronous request/response exchange.
func (c *Client) call(req Request) (Response, error) {
	ch := make(chan Response, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return Response{}, fmt.Errorf("gateway: client closed")
	}
	c.pending[req.ID] = ch
	err := c.write(req)
	c.mu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, req.ID)
		c.mu.Unlock()
		return Response{}, err
	}
	timeout := c.Timeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	select {
	case r, ok := <-ch:
		if !ok {
			return Response{}, fmt.Errorf("gateway: connection closed")
		}
		if r.Op == "error" {
			return r, fmt.Errorf("gateway: %s", r.Message)
		}
		return r, nil
	case <-time.After(timeout):
		c.mu.Lock()
		delete(c.pending, req.ID)
		c.mu.Unlock()
		return Response{}, fmt.Errorf("gateway: request %s timed out", req.ID)
	}
}

// write encodes a frame; caller holds c.mu.
func (c *Client) write(req Request) error {
	if err := c.enc.Encode(&req); err != nil {
		return err
	}
	return c.w.Flush()
}

func (c *Client) readLoop() {
	defer c.wg.Done()
	dec := json.NewDecoder(bufio.NewReaderSize(c.nc, 1<<16))
	dec.UseNumber()
	for {
		var r Response
		if err := dec.Decode(&r); err != nil {
			_ = c.Close()
			return
		}
		if r.Doc != nil {
			r.Doc = document.Normalize(r.Doc)
		}
		for i := range r.Docs {
			r.Docs[i] = document.Normalize(r.Docs[i])
		}
		switch r.Op {
		case "resync":
			// The gateway shed events for this connection; surface the
			// marker to every subscription so each can repair via pull.
			c.resyncs.Add(1)
			c.mu.Lock()
			for _, sub := range c.subs {
				if sub.closed {
					continue
				}
				select {
				case sub.events <- r:
				default:
				}
			}
			c.mu.Unlock()
		case "event":
			c.mu.Lock()
			sub := c.subs[r.ID]
			if sub != nil && !sub.closed {
				select {
				case sub.events <- r:
				default: // device falls behind: drop, re-sync via pull
				}
			}
			c.mu.Unlock()
		default:
			c.mu.Lock()
			ch := c.pending[r.ID]
			delete(c.pending, r.ID)
			c.mu.Unlock()
			if ch != nil {
				ch <- r
			}
		}
	}
}
