// Package coordinator implements the control plane of a multi-process
// InvaliDB matching grid (DESIGN.md §13). Exactly one coordinator process
// owns the assignment of global query-partition rows to server processes;
// it publishes each assignment as a PartitionMap epoch on the retained
// control topic, where every cluster process (and application server)
// installs it. Server processes announce themselves with NodeHellos on the
// coordination topic and acknowledge installed epochs with EpochAcks; an
// operator requests a live resize by publishing a ResizeRequest there (or
// by calling AddQueryPartition/AddWritePartition directly).
//
// The coordinator itself holds no subscription state and no data-path
// state: a crashed coordinator is replaced by starting a new one, which
// recovers the authoritative map from the retained control topic or — if
// the broker also restarted — from the NodeHellos of the running fleet
// (each carries the highest epoch its sender routes by). Data keeps
// flowing through an outage; only resizes stall.
package coordinator

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"invalidb/internal/core"
	"invalidb/internal/eventlayer"
)

// Options configures a Coordinator.
type Options struct {
	// Namespace is the event-layer topic namespace. Default "invalidb".
	Namespace string
	// QueryPartitions and WritePartitions are the INITIAL grid dimensions:
	// the coordinator publishes its first map as soon as the announced
	// fleet can host this many rows at this column width. Defaults 1 and 1.
	QueryPartitions int
	WritePartitions int
	// RepublishInterval is the cadence of map re-publications and node
	// expiry sweeps. Default 1s.
	RepublishInterval time.Duration
	// NodeExpiry drops a node from placement consideration when no hello
	// arrived for this long. Default 10s. Already-assigned rows are NOT
	// reassigned automatically — the paper's failure model restarts the
	// process (same node id) and resync repopulates it.
	NodeExpiry time.Duration
	// Logf receives control-plane diagnostics; nil silences them.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Namespace == "" {
		o.Namespace = "invalidb"
	}
	if o.QueryPartitions <= 0 {
		o.QueryPartitions = 1
	}
	if o.WritePartitions <= 0 {
		o.WritePartitions = 1
	}
	if o.RepublishInterval <= 0 {
		o.RepublishInterval = time.Second
	}
	if o.NodeExpiry <= 0 {
		o.NodeExpiry = 10 * time.Second
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// nodeState is the coordinator's view of one announced server process.
type nodeState struct {
	slots    int
	maxWP    int
	lastSeen time.Time
}

// Coordinator is the grid's control plane. Create with New, then Start.
type Coordinator struct {
	bus    eventlayer.Bus
	opts   Options
	topics core.Topics

	mu    sync.Mutex
	nodes map[string]*nodeState
	cur   *core.PartitionMap
	acks  map[string]uint64 // node -> highest acked epoch

	sub     eventlayer.Subscription
	stop    chan struct{}
	wg      sync.WaitGroup
	started bool
}

// New creates a coordinator over the given event layer.
func New(bus eventlayer.Bus, opts Options) (*Coordinator, error) {
	if bus == nil {
		return nil, fmt.Errorf("coordinator: nil event layer")
	}
	opts = opts.withDefaults()
	return &Coordinator{
		bus:    bus,
		opts:   opts,
		topics: core.NewTopics(opts.Namespace),
		nodes:  map[string]*nodeState{},
		acks:   map[string]uint64{},
		stop:   make(chan struct{}),
	}, nil
}

// Start subscribes to the coordination and control topics and launches the
// control loop. The control-topic subscription is the crash-recovery path:
// it is retained, so a freshly started coordinator immediately receives the
// map its predecessor last published and resumes from that epoch.
func (c *Coordinator) Start() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.started {
		return fmt.Errorf("coordinator: already started")
	}
	sub, err := c.bus.Subscribe(c.topics.Coord(), c.topics.Control())
	if err != nil {
		return err
	}
	c.sub = sub
	c.started = true
	c.wg.Add(1)
	go c.loop()
	return nil
}

// Stop halts the control loop. The retained map stays on the broker, so the
// grid keeps routing and a successor coordinator picks up where this one
// left off.
func (c *Coordinator) Stop() {
	c.mu.Lock()
	if !c.started {
		c.mu.Unlock()
		return
	}
	c.started = false
	c.mu.Unlock()
	close(c.stop)
	_ = c.sub.Close()
	c.wg.Wait()
}

func (c *Coordinator) loop() {
	defer c.wg.Done()
	ticker := time.NewTicker(c.opts.RepublishInterval)
	defer ticker.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-ticker.C:
			c.tick()
		case msg, ok := <-c.sub.C():
			if !ok {
				return
			}
			c.handle(msg.Payload)
		}
	}
}

func (c *Coordinator) handle(payload []byte) {
	env, err := core.DecodeEnvelope(payload)
	if err != nil {
		return
	}
	switch env.Kind {
	case core.KindNodeHello:
		c.handleHello(env.Hello)
	case core.KindEpochAck:
		c.mu.Lock()
		if env.EpochAck.Epoch > c.acks[env.EpochAck.Node] {
			c.acks[env.EpochAck.Node] = env.EpochAck.Epoch
		}
		c.mu.Unlock()
	case core.KindResize:
		var err error
		switch env.Resize.Axis {
		case core.ResizeAxisQP:
			err = c.AddQueryPartition()
		case core.ResizeAxisWP:
			err = c.AddWritePartition()
		}
		if err != nil {
			c.opts.Logf("coordinator: resize %s: %v", env.Resize.Axis, err)
		}
	case core.KindPartitionMap:
		// Retained control topic (crash recovery): adopt a higher epoch
		// published by a predecessor.
		c.adopt(env.Map)
	}
}

func (c *Coordinator) handleHello(h *core.NodeHello) {
	c.mu.Lock()
	n := c.nodes[h.Node]
	if n == nil {
		n = &nodeState{}
		c.nodes[h.Node] = n
		c.opts.Logf("coordinator: node %s joined (%d slots, max wp %d)", h.Node, h.Slots, h.MaxWritePartitions)
	}
	n.slots = h.Slots
	n.maxWP = h.MaxWritePartitions
	n.lastSeen = time.Now()
	if h.Map != nil && h.Map.Epoch > c.acks[h.Node] {
		// A node routing by epoch E has installed it: an implicit ack, which
		// is how a successor coordinator (whose ack table started empty)
		// regains convergence tracking for epochs acked before it existed.
		c.acks[h.Node] = h.Map.Epoch
	}
	c.mu.Unlock()
	if h.Map != nil {
		// A node routing by a higher epoch than ours means we crashed after
		// publishing it: adopt the fleet's view.
		c.adopt(h.Map)
	}
	c.tryInitialPlacement()
}

// adopt installs a recovered map when its epoch exceeds the current one.
func (c *Coordinator) adopt(m *core.PartitionMap) {
	c.mu.Lock()
	if c.cur == nil || m.Epoch > c.cur.Epoch {
		c.cur = m.Clone()
		c.opts.Logf("coordinator: adopted map epoch %d (%dx%d)", m.Epoch, m.QueryPartitions, m.WritePartitions)
	}
	c.mu.Unlock()
}

// tick republishes the current map (late joiners converge even if the
// retained copy was lost with a broker restart) and expires silent nodes
// from placement consideration.
func (c *Coordinator) tick() {
	c.mu.Lock()
	cutoff := time.Now().Add(-c.opts.NodeExpiry)
	for name, n := range c.nodes {
		if n.lastSeen.Before(cutoff) {
			delete(c.nodes, name)
			c.opts.Logf("coordinator: node %s expired", name)
		}
	}
	m := c.cur
	c.mu.Unlock()
	if m != nil {
		c.publish(m)
	}
	c.tryInitialPlacement()
}

// freeSlots returns a node's unassigned slot count under the given map.
func freeSlots(m *core.PartitionMap, node string, total int) int {
	used := 0
	if m != nil {
		for _, r := range m.Rows {
			if r.Node == node {
				used++
			}
		}
	}
	return total - used
}

// pickNode returns the placement-eligible node with the most free slots
// under m, ties broken lexicographically; "" when none has a free slot.
// Only nodes whose column capacity covers wp are eligible.
func (c *Coordinator) pickNode(m *core.PartitionMap, wp int) string {
	names := make([]string, 0, len(c.nodes))
	for name := range c.nodes {
		names = append(names, name)
	}
	sort.Strings(names)
	best, bestFree := "", 0
	for _, name := range names {
		n := c.nodes[name]
		if n.maxWP < wp {
			continue
		}
		if free := freeSlots(m, name, n.slots); free > bestFree {
			best, bestFree = name, free
		}
	}
	return best
}

// tryInitialPlacement forms and publishes the first map once the announced
// fleet can host the initial QP x WP grid.
func (c *Coordinator) tryInitialPlacement() {
	c.mu.Lock()
	if c.cur != nil {
		c.mu.Unlock()
		return
	}
	m := &core.PartitionMap{
		Epoch:           1,
		QueryPartitions: c.opts.QueryPartitions,
		WritePartitions: c.opts.WritePartitions,
	}
	for row := 0; row < c.opts.QueryPartitions; row++ {
		node := c.pickNode(m, c.opts.WritePartitions)
		if node == "" {
			c.mu.Unlock()
			return // not enough capacity announced yet
		}
		slot := c.nodes[node].slots - freeSlots(m, node, c.nodes[node].slots)
		m.Rows = append(m.Rows, core.RowAssignment{Node: node, Slot: slot})
	}
	c.cur = m
	c.mu.Unlock()
	c.opts.Logf("coordinator: initial map epoch 1 (%dx%d across %d rows)", m.QueryPartitions, m.WritePartitions, len(m.Rows))
	c.publish(m)
}

// AddQueryPartition grows the grid by one query-partition row, placed on
// the node with the most free slots, and publishes the new epoch. The new
// row changes every query's hash->row mapping, so application servers
// migrate affected subscriptions through the backfill engine on seeing the
// epoch; writes keep flowing to the old rows throughout (the cluster routes
// writes by the newest map only, and every owned row receives them).
func (c *Coordinator) AddQueryPartition() error {
	c.mu.Lock()
	if c.cur == nil {
		c.mu.Unlock()
		return fmt.Errorf("coordinator: no map published yet")
	}
	next := c.cur.Clone()
	next.Epoch++
	next.QueryPartitions++
	node := c.pickNode(next, next.WritePartitions)
	if node == "" {
		c.mu.Unlock()
		return fmt.Errorf("coordinator: no node with a free slot for row %d", next.QueryPartitions-1)
	}
	slot := c.nodes[node].slots - freeSlots(next, node, c.nodes[node].slots)
	next.Rows = append(next.Rows, core.RowAssignment{Node: node, Slot: slot})
	c.cur = next
	c.mu.Unlock()
	c.opts.Logf("coordinator: epoch %d adds row %d on %s slot %d", next.Epoch, next.QueryPartitions-1, node, slot)
	c.publish(next)
	return nil
}

// AddWritePartition grows the grid by one write-partition column and
// publishes the new epoch. Every assigned node must have the column
// headroom (MaxWritePartitions); the columns already exist as idle tasks on
// each process, so no rows move — keys re-hash across columns, and the
// migration backfill plus the clients' per-key version guards absorb the
// re-slicing.
func (c *Coordinator) AddWritePartition() error {
	c.mu.Lock()
	if c.cur == nil {
		c.mu.Unlock()
		return fmt.Errorf("coordinator: no map published yet")
	}
	next := c.cur.Clone()
	next.Epoch++
	next.WritePartitions++
	for _, r := range next.Rows {
		n := c.nodes[r.Node]
		if n == nil {
			c.mu.Unlock()
			return fmt.Errorf("coordinator: assigned node %s not announced", r.Node)
		}
		if n.maxWP < next.WritePartitions {
			c.mu.Unlock()
			return fmt.Errorf("coordinator: node %s capacity %d < %d write partitions", r.Node, n.maxWP, next.WritePartitions)
		}
	}
	c.cur = next
	c.mu.Unlock()
	c.opts.Logf("coordinator: epoch %d widens grid to %d write partitions", next.Epoch, next.WritePartitions)
	c.publish(next)
	return nil
}

func (c *Coordinator) publish(m *core.PartitionMap) {
	env := &core.Envelope{Kind: core.KindPartitionMap, Map: m}
	data, err := env.Encode()
	if err != nil {
		c.opts.Logf("coordinator: encode map: %v", err)
		return
	}
	if err := c.bus.Publish(c.topics.Control(), data); err != nil {
		c.opts.Logf("coordinator: publish map: %v", err)
	}
}

// CurrentMap returns a copy of the published map, or nil before initial
// placement.
func (c *Coordinator) CurrentMap() *core.PartitionMap {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cur == nil {
		return nil
	}
	return c.cur.Clone()
}

// Nodes returns the names of the currently announced server processes.
func (c *Coordinator) Nodes() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.nodes))
	for name := range c.nodes {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Converged reports whether every node assigned rows in the current map has
// acknowledged its epoch.
func (c *Coordinator) Converged() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cur == nil {
		return false
	}
	for _, r := range c.cur.Rows {
		if c.acks[r.Node] < c.cur.Epoch {
			return false
		}
	}
	return true
}

// WaitConverged blocks until Converged or the timeout elapses.
func (c *Coordinator) WaitConverged(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if c.Converged() {
			return true
		}
		time.Sleep(10 * time.Millisecond)
	}
	return c.Converged()
}
