package coordinator

import (
	"testing"
	"time"

	"invalidb/internal/core"
	"invalidb/internal/eventlayer"
)

func testOptions() Options {
	return Options{
		QueryPartitions:   2,
		WritePartitions:   2,
		RepublishInterval: 10 * time.Millisecond,
	}
}

func startCoordinator(t *testing.T, bus eventlayer.Bus, opts Options) *Coordinator {
	t.Helper()
	c, err := New(bus, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	return c
}

// hello publishes a NodeHello the way a grid-mode cluster process does.
func hello(t *testing.T, bus eventlayer.Bus, node string, slots, maxWP int, m *core.PartitionMap) {
	t.Helper()
	env := &core.Envelope{Kind: core.KindNodeHello, Hello: &core.NodeHello{
		Node: node, Slots: slots, MaxWritePartitions: maxWP, Map: m,
	}}
	data, err := env.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := bus.Publish(core.NewTopics("").Coord(), data); err != nil {
		t.Fatal(err)
	}
}

func waitMap(t *testing.T, c *Coordinator, what string, timeout time.Duration, ok func(*core.PartitionMap) bool) *core.PartitionMap {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if m := c.CurrentMap(); m != nil && ok(m) {
			return m
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s; map: %+v", what, c.CurrentMap())
	return nil
}

// TestInitialPlacementWaitsForCapacity: no map is published until the
// announced fleet can host every row, then rows spread over the nodes with
// the most free slots.
func TestInitialPlacementWaitsForCapacity(t *testing.T) {
	bus := eventlayer.NewMemBus(eventlayer.MemBusOptions{})
	defer bus.Close()
	opts := testOptions()
	opts.QueryPartitions = 3
	c := startCoordinator(t, bus, opts)

	hello(t, bus, "a", 2, 2, nil)
	time.Sleep(50 * time.Millisecond)
	if m := c.CurrentMap(); m != nil {
		t.Fatalf("map published with insufficient capacity: %+v", m)
	}

	hello(t, bus, "b", 2, 2, nil)
	m := waitMap(t, c, "initial placement", 5*time.Second, func(m *core.PartitionMap) bool { return m.Epoch == 1 })
	if m.QueryPartitions != 3 || m.WritePartitions != 2 || len(m.Rows) != 3 {
		t.Fatalf("map = %+v, want 3x2 with 3 rows", m)
	}
	perNode := map[string]int{}
	for _, r := range m.Rows {
		perNode[r.Node]++
	}
	// Greedy most-free placement alternates: no node exceeds its slots and
	// both nodes host at least one row.
	if perNode["a"] == 0 || perNode["b"] == 0 || perNode["a"] > 2 || perNode["b"] > 2 {
		t.Fatalf("rows unbalanced: %v", perNode)
	}
}

// TestResizeViaCoordTopic: a ResizeRequest published on the coordination
// topic (the one-shot CLI path) grows the grid exactly like the direct call.
func TestResizeViaCoordTopic(t *testing.T) {
	bus := eventlayer.NewMemBus(eventlayer.MemBusOptions{})
	defer bus.Close()
	c := startCoordinator(t, bus, testOptions())
	hello(t, bus, "a", 4, 2, nil)
	waitMap(t, c, "initial placement", 5*time.Second, func(m *core.PartitionMap) bool { return m.Epoch == 1 })

	env := &core.Envelope{Kind: core.KindResize, Resize: &core.ResizeRequest{Axis: core.ResizeAxisQP}}
	data, err := env.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := bus.Publish(core.NewTopics("").Coord(), data); err != nil {
		t.Fatal(err)
	}
	m := waitMap(t, c, "qp resize", 5*time.Second, func(m *core.PartitionMap) bool { return m.Epoch == 2 })
	if m.QueryPartitions != 3 || len(m.Rows) != 3 {
		t.Fatalf("map = %+v, want 3 rows after qp resize", m)
	}
}

// TestAddWritePartitionRequiresHeadroom: the wp axis only grows when every
// assigned node announced the column capacity, and a refusal moves nothing.
func TestAddWritePartitionRequiresHeadroom(t *testing.T) {
	bus := eventlayer.NewMemBus(eventlayer.MemBusOptions{})
	defer bus.Close()
	c := startCoordinator(t, bus, testOptions())
	hello(t, bus, "a", 4, 2, nil)
	waitMap(t, c, "initial placement", 5*time.Second, func(m *core.PartitionMap) bool { return m.Epoch == 1 })

	if err := c.AddWritePartition(); err == nil {
		t.Fatal("AddWritePartition succeeded beyond announced capacity")
	}
	if m := c.CurrentMap(); m.Epoch != 1 || m.WritePartitions != 2 {
		t.Fatalf("refused resize still moved the map: %+v", m)
	}

	// Announce the headroom; the same resize now succeeds.
	hello(t, bus, "a", 4, 3, nil)
	time.Sleep(30 * time.Millisecond)
	if err := c.AddWritePartition(); err != nil {
		t.Fatal(err)
	}
	if m := c.CurrentMap(); m.Epoch != 2 || m.WritePartitions != 3 {
		t.Fatalf("map = %+v, want epoch 2 with 3 write partitions", m)
	}
}

// TestRecoversFromRetainedMap: a successor coordinator started against a
// broker still holding the retained control topic adopts its predecessor's
// epoch instead of restarting placement from scratch.
func TestRecoversFromRetainedMap(t *testing.T) {
	bus := eventlayer.NewMemBus(eventlayer.MemBusOptions{})
	defer bus.Close()
	prev := &core.PartitionMap{
		Epoch:           5,
		QueryPartitions: 2,
		WritePartitions: 2,
		Rows:            []core.RowAssignment{{Node: "a", Slot: 0}, {Node: "a", Slot: 1}},
	}
	env := &core.Envelope{Kind: core.KindPartitionMap, Map: prev}
	data, err := env.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := bus.Publish(core.NewTopics("").Control(), data); err != nil {
		t.Fatal(err)
	}

	c := startCoordinator(t, bus, testOptions())
	m := waitMap(t, c, "retained recovery", 5*time.Second, func(m *core.PartitionMap) bool { return m.Epoch == 5 })
	if len(m.Rows) != 2 || m.Rows[0].Node != "a" {
		t.Fatalf("recovered map = %+v, want predecessor's assignment", m)
	}
}

// TestRecoversFromFleetHellos: when the broker restarted too (no retained
// map), the fleet's hellos — each carrying the epoch its sender routes by —
// are the recovery path, and they double as implicit epoch acks so the
// successor's convergence tracking works for epochs acked before it existed.
func TestRecoversFromFleetHellos(t *testing.T) {
	bus := eventlayer.NewMemBus(eventlayer.MemBusOptions{})
	defer bus.Close()
	c := startCoordinator(t, bus, testOptions())
	fleet := &core.PartitionMap{
		Epoch:           7,
		QueryPartitions: 2,
		WritePartitions: 2,
		Rows:            []core.RowAssignment{{Node: "a", Slot: 0}, {Node: "b", Slot: 0}},
	}
	hello(t, bus, "a", 2, 2, fleet)
	hello(t, bus, "b", 2, 2, fleet)
	waitMap(t, c, "hello recovery", 5*time.Second, func(m *core.PartitionMap) bool { return m.Epoch == 7 })
	if !c.WaitConverged(5 * time.Second) {
		t.Fatal("hello-implied acks did not converge the recovered epoch")
	}
}

// TestNodeExpiry: a node that stops helloing leaves placement consideration,
// so a resize that needs its slots is refused instead of assigned to a ghost.
func TestNodeExpiry(t *testing.T) {
	bus := eventlayer.NewMemBus(eventlayer.MemBusOptions{})
	defer bus.Close()
	opts := testOptions()
	opts.QueryPartitions = 1
	opts.NodeExpiry = 50 * time.Millisecond
	c := startCoordinator(t, bus, opts)
	hello(t, bus, "ghost", 1, 2, nil)
	waitMap(t, c, "initial placement", 5*time.Second, func(m *core.PartitionMap) bool { return m.Epoch == 1 })

	deadline := time.Now().Add(5 * time.Second)
	for len(c.Nodes()) > 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if nodes := c.Nodes(); len(nodes) != 0 {
		t.Fatalf("silent node never expired: %v", nodes)
	}
	if err := c.AddQueryPartition(); err == nil {
		t.Fatal("AddQueryPartition placed a row on an expired node")
	}
}
