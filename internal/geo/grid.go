package geo

import "math"

// This file adds the query-side spatial index primitives: every filter shape
// can report a bounding Bound, and a Bound can be covered by fixed-resolution
// grid cells. The matching layer registers each $geoWithin/$near query under
// the cells covering its shape's bound and probes a written point's single
// cell — the grid-cell discipline of distributed spatio-textual pub/sub
// systems (Chen et al.), reduced to the necessary-condition contract the
// multi-query index needs: a shape can only contain a point whose cell is
// among the cells covering the shape's bound.

// Bound is an axis-aligned lng/lat bounding box. It is a *necessary* region:
// every point a shape contains lies within the shape's Bound (the converse
// need not hold).
type Bound struct {
	MinLng, MinLat, MaxLng, MaxLat float64
}

// Bounder is implemented by shapes that can report a bounding box. All
// filter shapes in this package implement it.
type Bounder interface {
	Bound() Bound
}

// WorldBound covers every legal coordinate.
func WorldBound() Bound {
	return Bound{MinLng: -180, MinLat: -90, MaxLng: 180, MaxLat: 90}
}

// boundEps pads computed bounds so edge-epsilon containment decisions
// (polygon on-segment tolerance, haversine roundoff) can never push a
// contained point outside its shape's bound.
const boundEps = 1e-9

// Valid reports whether the bound is non-empty.
func (b Bound) Valid() bool {
	return b.MinLng <= b.MaxLng && b.MinLat <= b.MaxLat
}

// Contains reports whether the point lies within the bound (inclusive).
func (b Bound) Contains(p Point) bool {
	return p.Lng >= b.MinLng && p.Lng <= b.MaxLng &&
		p.Lat >= b.MinLat && p.Lat <= b.MaxLat
}

// clampWorld intersects the bound with the legal coordinate ranges.
func (b Bound) clampWorld() Bound {
	return Bound{
		MinLng: math.Max(b.MinLng, -180), MaxLng: math.Min(b.MaxLng, 180),
		MinLat: math.Max(b.MinLat, -90), MaxLat: math.Min(b.MaxLat, 90),
	}
}

// Bound returns the box itself.
func (b Box) Bound() Bound {
	return Bound{MinLng: b.Min.Lng, MinLat: b.Min.Lat, MaxLng: b.Max.Lng, MaxLat: b.Max.Lat}
}

// Bound returns a bounding box of the spherical cap. Latitude extent is
// exact (center ± radius along the meridian); longitude extent uses the
// spherical-cap formula with the cap's most poleward latitude, which is
// conservative. Caps touching a pole, wrapping the antimeridian, or wider
// than a quarter sphere degrade to the full longitude range — correct,
// merely less selective.
func (c Circle) Bound() Bound {
	radDeg := c.RadiusRad * 180 / math.Pi
	latMin := c.Center.Lat - radDeg - boundEps
	latMax := c.Center.Lat + radDeg + boundEps
	if latMin <= -90 || latMax >= 90 || c.RadiusRad >= math.Pi/2 {
		return Bound{MinLng: -180, MaxLng: 180,
			MinLat: math.Max(latMin, -90), MaxLat: math.Min(latMax, 90)}
	}
	// cos of the most poleward latitude the cap reaches: the smallest
	// cos(lat), hence the widest longitude span.
	phi := math.Max(math.Abs(latMin), math.Abs(latMax)) * math.Pi / 180
	sinR := math.Sin(c.RadiusRad)
	cosPhi := math.Cos(phi)
	if sinR >= cosPhi {
		return Bound{MinLng: -180, MaxLng: 180, MinLat: latMin, MaxLat: latMax}
	}
	dLng := math.Asin(sinR/cosPhi)*180/math.Pi + boundEps
	lngMin := c.Center.Lng - dLng
	lngMax := c.Center.Lng + dLng
	if lngMin < -180 || lngMax > 180 {
		// Antimeridian wrap: fall back to the full longitude range rather
		// than splitting the bound in two.
		lngMin, lngMax = -180, 180
	}
	return Bound{MinLng: lngMin, MinLat: latMin, MaxLng: lngMax, MaxLat: latMax}
}

// Bound returns the ring's bounding box (planar polygon semantics), padded
// by the on-segment tolerance.
func (pg Polygon) Bound() Bound {
	if len(pg.Ring) == 0 {
		return Bound{MinLng: 1, MaxLng: -1} // invalid/empty
	}
	b := Bound{MinLng: pg.Ring[0].Lng, MaxLng: pg.Ring[0].Lng,
		MinLat: pg.Ring[0].Lat, MaxLat: pg.Ring[0].Lat}
	for _, p := range pg.Ring[1:] {
		b.MinLng = math.Min(b.MinLng, p.Lng)
		b.MaxLng = math.Max(b.MaxLng, p.Lng)
		b.MinLat = math.Min(b.MinLat, p.Lat)
		b.MaxLat = math.Max(b.MaxLat, p.Lat)
	}
	b.MinLng -= boundEps
	b.MaxLng += boundEps
	b.MinLat -= boundEps
	b.MaxLat += boundEps
	return b
}

// CellID maps a point to its grid cell at the given resolution (degrees per
// cell): the x/y cell coordinates packed into one uint64. The mapping is the
// only contract — a point's cell computed at probe time must equal the cell
// CoverCells produced for any bound containing the point.
//
//invalidb:hotpath
func CellID(p Point, deg float64) uint64 {
	x := uint64(uint32(int32(math.Floor((p.Lng + 180) / deg))))
	y := uint64(uint32(int32(math.Floor((p.Lat + 90) / deg))))
	return x<<32 | y
}

// CoverCells appends every cell overlapping the bound to cells and returns
// the extended slice. When the bound spans more than maxCells cells, it
// returns (nil, false): the caller falls back to a less selective index (a
// worldwide query gains nothing from cell postings).
func CoverCells(b Bound, deg float64, maxCells int, cells []uint64) ([]uint64, bool) {
	b = b.clampWorld()
	if !b.Valid() {
		return cells, true // empty bound: no cells, trivially covered
	}
	x0 := int32(math.Floor((b.MinLng + 180) / deg))
	x1 := int32(math.Floor((b.MaxLng + 180) / deg))
	y0 := int32(math.Floor((b.MinLat + 90) / deg))
	y1 := int32(math.Floor((b.MaxLat + 90) / deg))
	nx, ny := int64(x1-x0)+1, int64(y1-y0)+1
	if nx*ny > int64(maxCells) {
		return nil, false
	}
	for x := x0; x <= x1; x++ {
		for y := y0; y <= y1; y++ {
			cells = append(cells, uint64(uint32(x))<<32|uint64(uint32(y)))
		}
	}
	return cells, true
}
