package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointValid(t *testing.T) {
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{0, 0}, true},
		{Point{-180, -90}, true},
		{Point{180, 90}, true},
		{Point{181, 0}, false},
		{Point{0, 91}, false},
		{Point{math.NaN(), 0}, false},
	}
	for _, c := range cases {
		if c.p.Valid() != c.want {
			t.Errorf("Valid(%+v) = %v, want %v", c.p, !c.want, c.want)
		}
	}
}

func TestDistanceKnownValues(t *testing.T) {
	hamburg := Point{Lng: 9.99, Lat: 53.55}
	berlin := Point{Lng: 13.40, Lat: 52.52}
	d := DistanceMeters(hamburg, berlin)
	// Real-world distance is about 255 km; allow generous slack for the
	// spherical model.
	if d < 240_000 || d > 270_000 {
		t.Fatalf("Hamburg-Berlin distance = %.0f m, want ~255 km", d)
	}
	if DistanceMeters(hamburg, hamburg) != 0 {
		t.Fatal("distance to self should be 0")
	}
}

func TestDistanceAntipodal(t *testing.T) {
	a := Point{Lng: 0, Lat: 0}
	b := Point{Lng: 180, Lat: 0}
	if got := DistanceRad(a, b); math.Abs(got-math.Pi) > 1e-9 {
		t.Fatalf("antipodal distance = %v rad, want pi", got)
	}
}

func TestBoxContains(t *testing.T) {
	b := NewBox(Point{10, 10}, Point{0, 0}) // corners given in reverse order
	if !b.Contains(Point{5, 5}) || !b.Contains(Point{0, 0}) || !b.Contains(Point{10, 10}) {
		t.Fatal("box should contain interior and corners")
	}
	if b.Contains(Point{10.01, 5}) || b.Contains(Point{5, -0.01}) {
		t.Fatal("box contains exterior point")
	}
}

func TestCircleContains(t *testing.T) {
	c := Circle{Center: Point{0, 0}, RadiusRad: 1000 / EarthRadiusMeters}
	inside := Point{Lng: 0.005, Lat: 0} // ~557 m east
	outside := Point{Lng: 0.02, Lat: 0} // ~2.2 km east
	if !c.Contains(inside) {
		t.Fatal("point within radius not contained")
	}
	if c.Contains(outside) {
		t.Fatal("point beyond radius contained")
	}
}

func TestPolygonContains(t *testing.T) {
	pg, err := NewPolygon([]Point{{0, 0}, {10, 0}, {10, 10}, {0, 10}})
	if err != nil {
		t.Fatal(err)
	}
	if !pg.Contains(Point{5, 5}) {
		t.Fatal("centroid not contained")
	}
	if pg.Contains(Point{15, 5}) || pg.Contains(Point{5, -1}) {
		t.Fatal("exterior point contained")
	}
	if !pg.Contains(Point{0, 5}) {
		t.Fatal("edge point should count as inside")
	}
	if !pg.Contains(Point{10, 10}) {
		t.Fatal("vertex should count as inside")
	}
}

func TestPolygonConcave(t *testing.T) {
	// A "C" shape: notch cut from the right side.
	pg, err := NewPolygon([]Point{{0, 0}, {10, 0}, {10, 3}, {4, 3}, {4, 7}, {10, 7}, {10, 10}, {0, 10}})
	if err != nil {
		t.Fatal(err)
	}
	if pg.Contains(Point{7, 5}) {
		t.Fatal("point in the notch should be outside")
	}
	if !pg.Contains(Point{2, 5}) {
		t.Fatal("point in the spine should be inside")
	}
}

func TestPolygonClosedRingAccepted(t *testing.T) {
	pg, err := NewPolygon([]Point{{0, 0}, {4, 0}, {4, 4}, {0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if len(pg.Ring) != 3 {
		t.Fatalf("closing vertex not dropped: %d vertices", len(pg.Ring))
	}
}

func TestPolygonRejectsDegenerate(t *testing.T) {
	if _, err := NewPolygon([]Point{{0, 0}, {1, 1}}); err == nil {
		t.Fatal("2-vertex polygon accepted")
	}
	if _, err := NewPolygon([]Point{{0, 0}, {1, 1}, {999, 0}}); err == nil {
		t.Fatal("out-of-range vertex accepted")
	}
}

func TestParsePointForms(t *testing.T) {
	cases := []any{
		[]any{float64(9.99), float64(53.55)},
		[]any{int64(9), int64(53)},
		map[string]any{"lng": float64(9.99), "lat": float64(53.55)},
		map[string]any{"x": float64(9.99), "y": float64(53.55)},
		map[string]any{"type": "Point", "coordinates": []any{float64(9.99), float64(53.55)}},
	}
	for i, c := range cases {
		if _, ok := ParsePoint(c); !ok {
			t.Errorf("case %d: valid point form rejected: %v", i, c)
		}
	}
	bad := []any{
		"9.99,53.55",
		[]any{float64(1)},
		[]any{float64(500), float64(0)},
		map[string]any{"type": "Point"},
		map[string]any{"lng": "x", "lat": "y"},
		nil,
	}
	for i, c := range bad {
		if _, ok := ParsePoint(c); ok {
			t.Errorf("bad case %d: invalid point form accepted: %v", i, c)
		}
	}
}

func TestQuickDistanceSymmetricAndTriangle(t *testing.T) {
	f := func(a1, a2, b1, b2, c1, c2 float64) bool {
		wrap := func(v, lim float64) float64 { return math.Mod(math.Abs(v), lim) }
		a := Point{Lng: wrap(a1, 180), Lat: wrap(a2, 90)}
		b := Point{Lng: -wrap(b1, 180), Lat: -wrap(b2, 90)}
		c := Point{Lng: wrap(c1, 180), Lat: -wrap(c2, 90)}
		dab, dba := DistanceRad(a, b), DistanceRad(b, a)
		if math.Abs(dab-dba) > 1e-12 {
			return false
		}
		// Triangle inequality with epsilon for floating error.
		return DistanceRad(a, c) <= dab+DistanceRad(b, c)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickBoxContainsItsCorners(t *testing.T) {
	f := func(x1, y1, x2, y2 float64) bool {
		wrap := func(v, lim float64) float64 { return math.Mod(v, lim) }
		a := Point{Lng: wrap(x1, 180), Lat: wrap(y1, 90)}
		b := Point{Lng: wrap(x2, 180), Lat: wrap(y2, 90)}
		if math.IsNaN(a.Lng) || math.IsNaN(a.Lat) || math.IsNaN(b.Lng) || math.IsNaN(b.Lat) {
			return true
		}
		box := NewBox(a, b)
		mid := Point{Lng: (a.Lng + b.Lng) / 2, Lat: (a.Lat + b.Lat) / 2}
		return box.Contains(a) && box.Contains(b) && box.Contains(mid)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
