package geo

import (
	"math"
	"math/rand"
	"testing"
)

func cellSet(cells []uint64) map[uint64]bool {
	m := make(map[uint64]bool, len(cells))
	for _, c := range cells {
		m[c] = true
	}
	return m
}

// Property at the heart of the grid index: for any shape and any point the
// shape contains, the point's cell must be among the cells covering the
// shape's bound.
func TestCoverCellsContainsShapePoints(t *testing.T) {
	const deg = 0.25
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 300; iter++ {
		var shape Shape
		var bounder Bounder
		switch iter % 3 {
		case 0:
			c := Point{Lng: rng.Float64()*340 - 170, Lat: rng.Float64()*160 - 80}
			b := NewBox(c, Point{Lng: c.Lng + rng.Float64()*3, Lat: c.Lat + rng.Float64()*3})
			shape, bounder = b, b
		case 1:
			c := Circle{
				Center:    Point{Lng: rng.Float64()*340 - 170, Lat: rng.Float64()*160 - 80},
				RadiusRad: rng.Float64() * 0.02,
			}
			shape, bounder = c, c
		default:
			c := Point{Lng: rng.Float64()*300 - 150, Lat: rng.Float64()*140 - 70}
			ring := make([]Point, 0, 5)
			for k := 0; k < 5; k++ {
				ang := float64(k) / 5 * 2 * math.Pi
				r := 0.5 + rng.Float64()*2
				ring = append(ring, Point{Lng: c.Lng + r*math.Cos(ang), Lat: c.Lat + r*math.Sin(ang)})
			}
			pg, err := NewPolygon(ring)
			if err != nil {
				t.Fatalf("polygon: %v", err)
			}
			shape, bounder = pg, pg
		}
		cells, ok := CoverCells(bounder.Bound(), deg, 1<<20, nil)
		if !ok {
			t.Fatalf("iter %d: cover unexpectedly over cap", iter)
		}
		set := cellSet(cells)
		bound := bounder.Bound()
		for probe := 0; probe < 200; probe++ {
			p := Point{
				Lng: bound.MinLng + rng.Float64()*(bound.MaxLng-bound.MinLng),
				Lat: bound.MinLat + rng.Float64()*(bound.MaxLat-bound.MinLat),
			}
			if !p.Valid() || !shape.Contains(p) {
				continue
			}
			if !set[CellID(p, deg)] {
				t.Fatalf("iter %d: shape contains %+v but its cell is not covered", iter, p)
			}
		}
	}
}

func TestCircleBoundContainsCircle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 500; iter++ {
		c := Circle{
			Center:    Point{Lng: rng.Float64()*360 - 180, Lat: rng.Float64()*180 - 90},
			RadiusRad: rng.Float64() * 0.5,
		}
		b := c.Bound()
		for probe := 0; probe < 100; probe++ {
			p := Point{Lng: rng.Float64()*360 - 180, Lat: rng.Float64()*180 - 90}
			if c.Contains(p) && !b.Contains(p) {
				t.Fatalf("circle %+v contains %+v outside bound %+v", c, p, b)
			}
		}
	}
}

func TestCircleBoundAntimeridianAndPoles(t *testing.T) {
	// A cap straddling the antimeridian must widen to the full lng range.
	c := Circle{Center: Point{Lng: 179.9, Lat: 0}, RadiusRad: 0.01}
	b := c.Bound()
	p := Point{Lng: -179.8, Lat: 0}
	if c.Contains(p) && !b.Contains(p) {
		t.Fatalf("antimeridian point %+v escapes bound %+v", p, b)
	}
	// A cap over the pole must cover all longitudes.
	c = Circle{Center: Point{Lng: 0, Lat: 89.5}, RadiusRad: 0.02}
	b = c.Bound()
	p = Point{Lng: 180, Lat: 89.9}
	if c.Contains(p) && !b.Contains(p) {
		t.Fatalf("polar point %+v escapes bound %+v", p, b)
	}
	if b.MinLng != -180 || b.MaxLng != 180 {
		t.Fatalf("polar cap bound should span all longitudes, got %+v", b)
	}
}

func TestCoverCellsCap(t *testing.T) {
	cells, ok := CoverCells(WorldBound(), 0.1, 4096, nil)
	if ok || cells != nil {
		t.Fatalf("world bound at 0.1deg should exceed the cap, got ok=%v len=%d", ok, len(cells))
	}
	cells, ok = CoverCells(Bound{MinLng: 0, MinLat: 0, MaxLng: 0.55, MaxLat: 0.35}, 0.1, 4096, nil)
	if !ok {
		t.Fatal("small bound should be coverable")
	}
	if len(cells) != 6*4 {
		t.Fatalf("expected 24 cells, got %d", len(cells))
	}
}

func TestCellIDGridAlignment(t *testing.T) {
	const deg = 0.1
	// Points in the same cell share an ID; neighbours differ.
	a := Point{Lng: 10.01, Lat: 20.01}
	b := Point{Lng: 10.09, Lat: 20.09}
	c := Point{Lng: 10.11, Lat: 20.01}
	if CellID(a, deg) != CellID(b, deg) {
		t.Fatal("points in the same cell must share an ID")
	}
	if CellID(a, deg) == CellID(c, deg) {
		t.Fatal("points in adjacent cells must differ")
	}
}
