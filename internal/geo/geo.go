// Package geo implements the geospatial primitives backing the query
// engine's $geoWithin and $nearSphere operators: points, legacy boxes,
// spherical circles, and polygons, with spherical distance on an idealized
// Earth (the same model MongoDB's 2dsphere calculations use).
package geo

import (
	"fmt"
	"math"
)

// EarthRadiusMeters is the mean Earth radius used for spherical distance,
// matching MongoDB's 6378.1 km figure (equatorial radius).
const EarthRadiusMeters = 6378100.0

// Point is a position in degrees, longitude first (GeoJSON order).
type Point struct {
	Lng, Lat float64
}

// Valid reports whether the point lies within legal coordinate ranges.
func (p Point) Valid() bool {
	return p.Lng >= -180 && p.Lng <= 180 && p.Lat >= -90 && p.Lat <= 90 &&
		!math.IsNaN(p.Lng) && !math.IsNaN(p.Lat)
}

// DistanceRad returns the central angle between two points in radians,
// computed with the haversine formula (numerically stable for small angles).
func DistanceRad(a, b Point) float64 {
	la1, lo1 := a.Lat*math.Pi/180, a.Lng*math.Pi/180
	la2, lo2 := b.Lat*math.Pi/180, b.Lng*math.Pi/180
	dLat := la2 - la1
	dLng := lo2 - lo1
	s := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(la1)*math.Cos(la2)*math.Sin(dLng/2)*math.Sin(dLng/2)
	return 2 * math.Asin(math.Min(1, math.Sqrt(s)))
}

// DistanceMeters returns the great-circle distance between two points.
func DistanceMeters(a, b Point) float64 {
	return DistanceRad(a, b) * EarthRadiusMeters
}

// Shape is any region that can test point containment.
type Shape interface {
	Contains(p Point) bool
}

// Box is a legacy-coordinate rectangle given by two opposite corners.
type Box struct {
	Min, Max Point // normalized: Min.Lng <= Max.Lng, Min.Lat <= Max.Lat
}

// NewBox builds a Box from two arbitrary opposite corners.
func NewBox(a, b Point) Box {
	return Box{
		Min: Point{Lng: math.Min(a.Lng, b.Lng), Lat: math.Min(a.Lat, b.Lat)},
		Max: Point{Lng: math.Max(a.Lng, b.Lng), Lat: math.Max(a.Lat, b.Lat)},
	}
}

// Contains reports whether p lies inside the box (inclusive bounds).
func (b Box) Contains(p Point) bool {
	return p.Lng >= b.Min.Lng && p.Lng <= b.Max.Lng &&
		p.Lat >= b.Min.Lat && p.Lat <= b.Max.Lat
}

// Circle is a spherical cap: all points within RadiusRad radians of Center.
type Circle struct {
	Center    Point
	RadiusRad float64
}

// Contains reports whether p lies within the spherical cap.
func (c Circle) Contains(p Point) bool {
	return DistanceRad(c.Center, p) <= c.RadiusRad
}

// Polygon is a simple (non-self-intersecting) planar polygon over lng/lat
// coordinates. The ring need not be explicitly closed. MongoDB's legacy
// $polygon uses planar semantics; that is what filtering queries rely on.
type Polygon struct {
	Ring []Point
}

// NewPolygon validates and builds a polygon from at least three vertices.
func NewPolygon(ring []Point) (Polygon, error) {
	// Drop an explicit closing vertex.
	if len(ring) >= 2 && ring[0] == ring[len(ring)-1] {
		ring = ring[:len(ring)-1]
	}
	if len(ring) < 3 {
		return Polygon{}, fmt.Errorf("geo: polygon needs at least 3 distinct vertices, got %d", len(ring))
	}
	for i, p := range ring {
		if !p.Valid() {
			return Polygon{}, fmt.Errorf("geo: polygon vertex %d out of range: %+v", i, p)
		}
	}
	return Polygon{Ring: ring}, nil
}

// Contains reports whether p lies inside the polygon, using the even-odd
// ray-casting rule. Points exactly on an edge are treated as inside.
func (pg Polygon) Contains(p Point) bool {
	n := len(pg.Ring)
	if n < 3 {
		return false
	}
	inside := false
	for i, j := 0, n-1; i < n; j, i = i, i+1 {
		a, b := pg.Ring[i], pg.Ring[j]
		if onSegment(p, a, b) {
			return true
		}
		if (a.Lat > p.Lat) != (b.Lat > p.Lat) {
			x := (b.Lng-a.Lng)*(p.Lat-a.Lat)/(b.Lat-a.Lat) + a.Lng
			if p.Lng < x {
				inside = !inside
			}
		}
	}
	return inside
}

const segEps = 1e-12

func onSegment(p, a, b Point) bool {
	cross := (b.Lng-a.Lng)*(p.Lat-a.Lat) - (b.Lat-a.Lat)*(p.Lng-a.Lng)
	if math.Abs(cross) > segEps {
		return false
	}
	dot := (p.Lng-a.Lng)*(b.Lng-a.Lng) + (p.Lat-a.Lat)*(b.Lat-a.Lat)
	if dot < 0 {
		return false
	}
	sq := (b.Lng-a.Lng)*(b.Lng-a.Lng) + (b.Lat-a.Lat)*(b.Lat-a.Lat)
	return dot <= sq
}

// ParsePoint extracts a Point from a document value. Accepted forms, as in
// MongoDB: legacy pair [lng, lat], legacy object {lng:..., lat:...} or
// {x:..., y:...}, and GeoJSON {type:"Point", coordinates:[lng, lat]}.
func ParsePoint(v any) (Point, bool) {
	switch t := v.(type) {
	case []any:
		return parsePointPair(t)
	case map[string]any:
		if typ, ok := t["type"].(string); ok && typ == "Point" {
			coords, ok := t["coordinates"].([]any)
			if !ok {
				return Point{}, false
			}
			return parsePointPair(coords)
		}
		if lng, ok := asFloat(t["lng"]); ok {
			if lat, ok2 := asFloat(t["lat"]); ok2 {
				p := Point{Lng: lng, Lat: lat}
				return p, p.Valid()
			}
		}
		if x, ok := asFloat(t["x"]); ok {
			if y, ok2 := asFloat(t["y"]); ok2 {
				p := Point{Lng: x, Lat: y}
				return p, p.Valid()
			}
		}
		return Point{}, false
	default:
		return Point{}, false
	}
}

// parsePointPair parses the legacy [lng, lat] pair form. It takes the
// slice directly — on the matching hot path the caller already holds the
// concrete slice, and re-boxing it into an interface would allocate.
func parsePointPair(t []any) (Point, bool) {
	if len(t) != 2 {
		return Point{}, false
	}
	lng, ok1 := asFloat(t[0])
	lat, ok2 := asFloat(t[1])
	p := Point{Lng: lng, Lat: lat}
	return p, ok1 && ok2 && p.Valid()
}

func asFloat(v any) (float64, bool) {
	switch t := v.(type) {
	case float64:
		return t, true
	case int64:
		return float64(t), true
	case int:
		return float64(t), true
	default:
		return 0, false
	}
}
