package experiments

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"invalidb/internal/appserver"
	"invalidb/internal/core"
	"invalidb/internal/document"
	"invalidb/internal/eventlayer"
	"invalidb/internal/gateway"
	"invalidb/internal/loadgen"
	"invalidb/internal/metrics"
	"invalidb/internal/storage"
)

// Defaults for the `-exp fanout` scenario: the shared-subscription edge
// fan-out under a 100k-client mock swarm (DESIGN.md §14). The swarm dials
// through an in-process MemListener, so no file descriptors or TCP ports
// bound the scale — only memory and CPU, which is exactly what the
// experiment measures.
const (
	// FanoutClients is the mock-client swarm size.
	FanoutClients = 100_000
	// FanoutQueries is the number of distinct queries the swarm spreads
	// across: Clients/Queries clients share each query, which is the dedup
	// ratio the gateway must achieve (1000 with the defaults).
	FanoutQueries = 100
	// FanoutEventRate is the sustained write rate (ops/s). Each write
	// matches exactly one query and fans to Clients/Queries clients, so
	// delivered events/s = rate x Clients/Queries (25k/s with defaults).
	FanoutEventRate = 25
	// FanoutNoisyClients is the size of the second, quota-capped tenant's
	// swarm when -fanout-noisy is on.
	FanoutNoisyClients = 2000
	// FanoutNoisyMaxConns / FanoutNoisyMaxSubs cap the noisy tenant.
	FanoutNoisyMaxConns = 256
	FanoutNoisyMaxSubs  = 256
)

// FanoutConfig parameterizes one fan-out run.
type FanoutConfig struct {
	Clients   int
	Queries   int
	EventRate int
	// Noisy adds a second tenant under a connection/subscription quota and
	// verifies its rejection doesn't disturb the main swarm.
	Noisy         bool
	NoisyClients  int
	NoisyMaxConns int
	NoisyMaxSubs  int
}

// Defaults fills zero fields.
func (f FanoutConfig) Defaults() FanoutConfig {
	if f.Clients <= 0 {
		f.Clients = FanoutClients
	}
	if f.Queries <= 0 {
		f.Queries = FanoutQueries
	}
	if f.EventRate <= 0 {
		f.EventRate = FanoutEventRate
	}
	if f.NoisyClients <= 0 {
		f.NoisyClients = FanoutNoisyClients
	}
	if f.NoisyMaxConns <= 0 {
		f.NoisyMaxConns = FanoutNoisyMaxConns
	}
	if f.NoisyMaxSubs <= 0 {
		f.NoisyMaxSubs = FanoutNoisyMaxSubs
	}
	return f
}

// FanoutPoint is one measured fan-out run.
type FanoutPoint struct {
	Clients, Queries int
	// Subscribed is acked client subscriptions (must equal Clients).
	Subscribed int64
	// Upstream is live appserver subscriptions — the dedup target is
	// Upstream == Queries regardless of Clients.
	Upstream   int
	DedupRatio float64
	// ConnectTook is dial-to-all-acked for the whole swarm.
	ConnectTook time.Duration
	// Writes during the measure phase; Received is event frames the swarm
	// tallied (measure-phase events plus initial results and terminals).
	Writes   int
	Received uint64
	// Encoded vs Fanned pins encode-once: bodies serialized vs events
	// delivered. BytesSaved is body bytes never re-serialized.
	Encoded, Fanned, BytesSaved int64
	// Slow-consumer ledger.
	Drops, Resyncs int64
	// Terminal ledger: every subscribed client must see a terminal event.
	TerminalWant, TerminalSeen int64
	// Latency is sampled write-to-delivery latency against the scheduled
	// send stamp.
	Latency metrics.Summary
	// PerClientKB is resident-set growth per client across the connect
	// phase; GrowthKB is per-client RSS drift across the measure phase
	// (flat memory means ~0).
	PerClientKB, GrowthKB float64
	// Noisy-tenant ledger (zero when Noisy is off).
	NoisyClients, NoisyAdmitted, NoisyRejected, QuotaRejected int64
}

// RunFanoutPoint boots a single-process stack (bus, one matching cluster,
// appserver, gateway on a MemListener), connects a mock-client swarm spread
// across fc.Queries distinct queries, sustains fc.EventRate writes/s for
// cfg.Measure, then sweeps a terminal event through every query and audits
// that every subscribed client saw it.
func RunFanoutPoint(cfg Config, fc FanoutConfig, progress func(string)) (FanoutPoint, error) {
	cfg = cfg.Defaults()
	fc = fc.Defaults()
	if progress == nil {
		progress = func(string) {}
	}

	bus := eventlayer.NewMemBus(eventlayer.MemBusOptions{BufferSize: 1 << 16})
	defer bus.Close()
	opts := clusterOptions(cfg, 1, 1)
	opts.EnableQueryIndex = true // O(candidates) matching across the query population
	opts.TickInterval = 20 * time.Millisecond
	cluster, err := core.NewCluster(bus, opts)
	if err != nil {
		return FanoutPoint{}, err
	}
	if err := cluster.Start(); err != nil {
		return FanoutPoint{}, err
	}
	defer cluster.Stop()

	db := storage.Open(storage.Options{Shards: 16, OplogCapacity: 4096})
	srv, err := appserver.New(db, bus, appserver.Options{
		Tenant:      tenant,
		TTL:         10 * time.Minute,
		EventBuffer: 1 << 14,
	})
	if err != nil {
		return FanoutPoint{}, err
	}
	defer srv.Close()

	reg := metrics.NewRegistry()
	var quota func(string) gateway.Quota
	if fc.Noisy {
		quota = func(t string) gateway.Quota {
			if t == "noisy" {
				return gateway.Quota{MaxConns: fc.NoisyMaxConns, MaxSubs: fc.NoisyMaxSubs}
			}
			return gateway.Quota{}
		}
	}
	ln := gateway.NewMemListener()
	gw, err := gateway.ServeListener(srv, ln, gateway.Options{
		Metrics:    reg,
		OutBudget:  32 << 10,
		ReadBuffer: 2 << 10,
		Quota:      quota,
	})
	if err != nil {
		return FanoutPoint{}, err
	}
	defer gw.Close()

	w := loadgen.New(1, fc.Queries)
	swarm := loadgen.NewSwarm(ln.Dial, w, loadgen.SwarmOptions{
		Clients: fc.Clients,
		Queries: fc.Queries,
	})
	defer swarm.Close()

	runtime.GC()
	rssStart := rssBytes()
	progress(fmt.Sprintf("fanout: connecting %d clients across %d queries", fc.Clients, fc.Queries))
	connectStart := time.Now()
	if err := swarm.Connect(); err != nil {
		return FanoutPoint{}, err
	}
	subscribed := swarm.WaitSubscribed(fc.Clients, 5*time.Minute)
	connectTook := time.Since(connectStart)
	if subscribed < int64(fc.Clients) {
		return FanoutPoint{}, fmt.Errorf("experiments: only %d/%d clients subscribed (%d rejected, %d dial errors)",
			subscribed, fc.Clients, swarm.Rejected(), swarm.DialErrors())
	}
	runtime.GC()
	rssConnected := rssBytes()
	perClientKB := (rssConnected - rssStart) / float64(fc.Clients) / 1024
	progress(fmt.Sprintf("fanout: %d subscribed in %v (%.1f KiB/client), upstream subscriptions: %d",
		subscribed, connectTook.Round(time.Millisecond), perClientKB, gw.DistinctQueries()))

	// The noisy tenant storms in while the main swarm is live: its quota
	// must bound it without disturbing the measured tenant.
	var noisy *loadgen.Swarm
	if fc.Noisy {
		noisy = loadgen.NewSwarm(ln.Dial, w, loadgen.SwarmOptions{
			Clients: fc.NoisyClients,
			Queries: fc.Queries,
			Tenant:  "noisy",
		})
		defer noisy.Close()
		if err := noisy.Connect(); err != nil {
			return FanoutPoint{}, err
		}
		noisy.WaitSubscribed(fc.NoisyClients, 30*time.Second)
		progress(fmt.Sprintf("fanout: noisy tenant %d clients -> %d admitted, %d rejected",
			fc.NoisyClients, noisy.Subscribed(), noisy.Rejected()))
	}

	// Sustained open-loop writer: sentNs carries the scheduled send time,
	// so client-side queueing counts against the system, not for it. Each
	// write lands in exactly one query's reserved value.
	stopWrites := make(chan struct{})
	var writerWG sync.WaitGroup
	var writes atomic.Int64
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		start := time.Now()
		sent := 0
		for {
			select {
			case <-stopWrites:
				return
			default:
			}
			due := int(time.Since(start).Seconds() * float64(fc.EventRate))
			for sent < due {
				opDue := start.Add(time.Duration(float64(sent) / float64(fc.EventRate) * float64(time.Second)))
				d := document.Document{
					"_id":    fmt.Sprintf("f%07d", sent),
					"random": int64(w.MatchingValues[sent%fc.Queries]),
					"sentNs": opDue.UnixNano(),
				}
				if err := srv.Insert(loadgen.Collection, d); err == nil {
					writes.Add(1)
				}
				sent++
			}
			time.Sleep(time.Millisecond)
		}
	}()
	progress(fmt.Sprintf("fanout: measuring %v at %d writes/s", cfg.Measure, fc.EventRate))
	time.Sleep(cfg.Measure)
	close(stopWrites)
	writerWG.Wait()
	runtime.GC()
	rssMeasured := rssBytes()
	growthKB := (rssMeasured - rssConnected) / float64(fc.Clients) / 1024

	// Terminal sweep: one marked document per query; every subscribed
	// client must report it. Slow clients may have shed the first copy, so
	// the sweep re-sends with fresh keys until the ledger closes.
	progress("fanout: terminal sweep")
	deadline := time.Now().Add(120 * time.Second)
	for round := 0; swarm.TerminalSeen() < subscribed; round++ {
		if time.Now().After(deadline) {
			break
		}
		for q := 0; q < fc.Queries; q++ {
			d := document.Document{
				"_id":      fmt.Sprintf("t%03d-%d", q, round),
				"random":   int64(w.MatchingValues[q]),
				"terminal": true,
			}
			if err := srv.Insert(loadgen.Collection, d); err != nil {
				return FanoutPoint{}, err
			}
		}
		settle := time.Now().Add(2 * time.Second)
		for swarm.TerminalSeen() < subscribed && time.Now().Before(settle) {
			time.Sleep(20 * time.Millisecond)
		}
	}

	p := FanoutPoint{
		Clients: fc.Clients, Queries: fc.Queries,
		Subscribed:  subscribed,
		Upstream:    gw.DistinctQueries(),
		DedupRatio:  gw.DedupRatio(),
		ConnectTook: connectTook,
		Writes:      int(writes.Load()),
		Received:    swarm.Events(),
		Encoded:     reg.Counter("gateway.events.encoded").Value(),
		Fanned:      reg.Counter("gateway.events.fanout").Value(),
		BytesSaved:  reg.Counter("gateway.encode.bytes_saved").Value(),
		Drops:       reg.Counter("gateway.client.drops").Value(),
		Resyncs:     reg.Counter("gateway.client.resyncs").Value(),
		TerminalWant: subscribed, TerminalSeen: swarm.TerminalSeen(),
		Latency:     swarm.Latency(),
		PerClientKB: perClientKB,
		GrowthKB:    growthKB,
	}
	if noisy != nil {
		p.NoisyClients = int64(fc.NoisyClients)
		p.NoisyAdmitted = noisy.Subscribed()
		p.NoisyRejected = noisy.Rejected()
		p.QuotaRejected = reg.Counter("gateway.quota.rejected").Value()
	}
	return p, nil
}

// RenderFanout prints the dedup, memory, latency, and continuity report.
func RenderFanout(p FanoutPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Shared-subscription edge fan-out — %d clients over %d distinct queries, %d writes sustained (DESIGN.md §14)\n",
		p.Clients, p.Queries, p.Writes)
	fmt.Fprintf(&b, "%-28s %12d (connected in %v)\n", "clients subscribed", p.Subscribed, p.ConnectTook.Round(time.Millisecond))
	fmt.Fprintf(&b, "%-28s %12d (one per distinct query)\n", "upstream subscriptions", p.Upstream)
	fmt.Fprintf(&b, "%-28s %12.0f client subs per upstream\n", "dedup ratio", p.DedupRatio)
	fmt.Fprintf(&b, "%-28s %12d bodies for %d delivered events (%.1f MB re-encoding avoided)\n",
		"bodies encoded", p.Encoded, p.Fanned, float64(p.BytesSaved)/1e6)
	fmt.Fprintf(&b, "%-28s %12.1f KiB connect; %+.2f KiB drift during measure\n", "per-client RSS", p.PerClientKB, p.GrowthKB)
	fmt.Fprintf(&b, "%-28s %7.1f / %7.1f / %7.1f ms (%d samples)\n", "delivery p50/p99/max",
		p.Latency.P50MS, p.Latency.P99MS, p.Latency.MaxMS, p.Latency.Count)
	fmt.Fprintf(&b, "%-28s %12d received; %d shed on slow clients, %d resync markers\n", "events", p.Received, p.Drops, p.Resyncs)
	fmt.Fprintf(&b, "terminal ledger: %d/%d clients saw the terminal event\n", p.TerminalSeen, p.TerminalWant)
	if p.NoisyClients > 0 {
		fmt.Fprintf(&b, "noisy tenant: %d clients -> %d admitted, %d rejected (%d quota rejections total); main swarm undisturbed\n",
			p.NoisyClients, p.NoisyAdmitted, p.NoisyRejected, p.QuotaRejected)
	}
	return b.String()
}

// rssBytes reads the process's resident set from /proc/self/statm,
// falling back to Go runtime stats where /proc is unavailable.
func rssBytes() float64 {
	if b, err := os.ReadFile("/proc/self/statm"); err == nil {
		f := strings.Fields(string(b))
		if len(f) >= 2 {
			if pages, err := strconv.ParseFloat(f[1], 64); err == nil {
				return pages * float64(os.Getpagesize())
			}
		}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return float64(ms.HeapInuse + ms.StackInuse)
}
