// Package experiments reproduces the paper's evaluation (§6 InvaliDB
// cluster performance, §7 Quaestor server performance): workload generation,
// cluster deployment, latency measurement, saturation search, and the
// renderers that print each figure and table. Absolute numbers are scaled to
// a single process — matching nodes get a configurable match-operation
// budget standing in for the testbed's per-node CPU cap — but the paper's
// shapes (linear read and write scalability, flat latency across cluster
// sizes, the application server's constant overhead and write ceiling) are
// reproduced faithfully.
package experiments

import (
	"fmt"
	"sync"
	"time"

	"invalidb/internal/appserver"
	"invalidb/internal/core"
	"invalidb/internal/document"
	"invalidb/internal/eventlayer"
	"invalidb/internal/loadgen"
	"invalidb/internal/metrics"
	"invalidb/internal/query"
	"invalidb/internal/storage"
)

// Config holds the scaled experiment parameters. The paper's testbed ran
// nodes at ~1.6M match-ops/s; the default here is 10x smaller so full sweeps
// finish in minutes on one machine.
type Config struct {
	// NodeCapacity is each matching node's budget in match-operations per
	// second. Default 150 000.
	NodeCapacity int
	// MatchingQueries is the number of queries that actually fire
	// notifications (the paper used 1 000 of the registered queries, each
	// matching exactly one written item). Default 40.
	MatchingQueries int
	// TargetNotifsPerSec bounds the notification rate so (de)serialization
	// of notifications stays constant across load levels (paper: ~17
	// matches/s over 60s = ~1000 latency samples). Scaled phases are much
	// shorter, so the default rate is higher — 50/s — to keep per-point
	// sample counts meaningful for p99 estimation. Default 50.
	TargetNotifsPerSec int
	// Warmup and Measure are the phase lengths (paper: 1-minute
	// measurements). Defaults 300ms and 2s.
	Warmup  time.Duration
	Measure time.Duration
	// Drain is the post-measurement grace period for in-flight
	// notifications. Default 400ms.
	Drain time.Duration
	// WriteIngestNodes and QueryIngestNodes match the paper's fixed
	// ingestion deployment (4 and 1).
	WriteIngestNodes int
	QueryIngestNodes int
	// AppServerWriteCapacity models the single application server's write
	// ceiling for the Quaestor experiments (paper: ~6 000 ops/s). Scaled
	// default 6 000.
	AppServerWriteCapacity int
	// EnableQueryIndex turns on the matching nodes' multi-query interval
	// index (an optimization the InvaliDB thesis discusses); per-write cost
	// then drops from #queries to #candidates. Used by the ablation bench.
	EnableQueryIndex bool
}

// Defaults fills zero fields.
func (c Config) Defaults() Config {
	if c.NodeCapacity <= 0 {
		c.NodeCapacity = 150_000
	}
	if c.MatchingQueries <= 0 {
		c.MatchingQueries = 40
	}
	if c.TargetNotifsPerSec <= 0 {
		c.TargetNotifsPerSec = 50
	}
	if c.Warmup <= 0 {
		c.Warmup = 300 * time.Millisecond
	}
	if c.Measure <= 0 {
		c.Measure = 2 * time.Second
	}
	if c.Drain <= 0 {
		c.Drain = 400 * time.Millisecond
	}
	if c.WriteIngestNodes <= 0 {
		c.WriteIngestNodes = 4
	}
	if c.QueryIngestNodes <= 0 {
		c.QueryIngestNodes = 1
	}
	if c.AppServerWriteCapacity <= 0 {
		c.AppServerWriteCapacity = 6_000
	}
	return c
}

// Point is one measured operating point.
type Point struct {
	QP, WP    int
	Queries   int
	OpsPerSec int
	Summary   metrics.Summary
	// Delivered / Expected count matching notifications; a saturated system
	// loses or delays notifications beyond the drain window.
	Delivered int
	Expected  int
	Hist      *metrics.Histogram
	// Breakdown splits the end-to-end latency into pipeline stages using the
	// stage timestamps carried by each notification (ingest, grid, bus, and —
	// for Quaestor points — appserver dispatch).
	Breakdown metrics.Breakdown
	// Query-index selectivity over the run (standalone cluster points only):
	// Writes counts documents published by the client, WritesMatched counts
	// writes the matching stage processed, and the Cand* fields snapshot the
	// cluster's queryindex.* counters. CandProbed/WritesMatched is the
	// per-write candidate-set size; against Queries it is the index's
	// pruning factor.
	Writes        int64
	WritesMatched int64
	CandProbed    int64
	CandEvaluated int64
	CandMatched   int64
}

// CandidatesPerWrite returns the mean candidate-set size the matching stage
// probed per write, or 0 when no writes were processed.
func (p Point) CandidatesPerWrite() float64 {
	if p.WritesMatched == 0 {
		return 0
	}
	return float64(p.CandProbed) / float64(p.WritesMatched)
}

// DeliveryOK reports whether at least 95% of expected notifications arrived.
func (p Point) DeliveryOK() bool {
	if p.Expected == 0 {
		return false
	}
	return float64(p.Delivered) >= 0.95*float64(p.Expected)
}

// SustainedUnder reports whether the point satisfies a p99 latency SLA.
func (p Point) SustainedUnder(slaMS float64) bool {
	return p.DeliveryOK() && p.Summary.P99MS <= slaMS
}

const tenant = "bench"

// workload abstracts the two load generators cluster points run: the
// paper's range-query workload and the spatio-textual hot-region scenario.
type workload interface {
	Queries(total, matching int) []query.Spec
	Doc(hit bool, idx int) document.Document
}

// clusterOptions maps an experiment Config onto the cluster options every
// standalone point uses.
func clusterOptions(cfg Config, qp, wp int) core.Options {
	return core.Options{
		QueryPartitions:   qp,
		WritePartitions:   wp,
		NodeCapacity:      cfg.NodeCapacity,
		QueryIngestNodes:  cfg.QueryIngestNodes,
		WriteIngestNodes:  cfg.WriteIngestNodes,
		HeartbeatInterval: time.Second,
		TickInterval:      100 * time.Millisecond,
		RetentionTime:     5 * time.Second,
		QueueSize:         1 << 15,
		EnableQueryIndex:  cfg.EnableQueryIndex,
	}
}

// RunClusterPoint measures a standalone InvaliDB deployment (§6): the
// benchmark client speaks to the event layer directly, inserting documents
// at a fixed rate and measuring the time from before the insert until the
// change notification arrives.
func RunClusterPoint(cfg Config, qp, wp, queries, opsPerSec int) (Point, error) {
	cfg = cfg.Defaults()
	matching := cfg.MatchingQueries
	if matching > queries {
		matching = queries
	}
	w := loadgen.New(1, matching)
	return runPoint(cfg, clusterOptions(cfg, qp, wp), w, loadgen.Collection, queries, matching, opsPerSec)
}

// runPoint deploys a cluster with the given options, registers the
// workload's query population, drives its documents at the target rate, and
// measures delivery, latency, and query-index selectivity.
func runPoint(cfg Config, opts core.Options, w workload, collection string,
	queries, matching, opsPerSec int) (Point, error) {
	bus := eventlayer.NewMemBus(eventlayer.MemBusOptions{BufferSize: 1 << 16})
	defer bus.Close()
	cluster, err := core.NewCluster(bus, opts)
	if err != nil {
		return Point{}, err
	}
	if err := cluster.Start(); err != nil {
		return Point{}, err
	}
	defer cluster.Stop()

	topics := cluster.Topics()
	notifSub, err := bus.Subscribe(topics.Notify(tenant))
	if err != nil {
		return Point{}, err
	}
	defer notifSub.Close()

	if err := registerSpecs(bus, cluster, topics, w.Queries(queries, matching)); err != nil {
		return Point{}, err
	}

	recorder := metrics.NewLatencyRecorder()
	hist := metrics.NewHistogram(2, 100)
	stages := metrics.NewRegistry()
	done := make(chan struct{})
	delivered := 0
	go func() {
		defer close(done)
		for msg := range notifSub.C() {
			env, err := core.DecodeEnvelope(msg.Payload)
			if err != nil || env.Kind != core.KindNotification {
				continue
			}
			n := env.Notification
			if n.Type != core.MatchAdd || n.Doc == nil {
				continue
			}
			if ts, ok := n.Doc["sentNs"].(int64); ok {
				recvNs := time.Now().UnixNano()
				lat := time.Duration(recvNs - ts)
				recorder.Record(lat)
				hist.Record(lat)
				delivered++
				// No appserver hop in the standalone deployment: the bus
				// stage ends at the benchmark client itself.
				stages.RecordStages(n.WriteNs, n.IngestNs, n.MatchNs, recvNs, 0)
			}
		}
	}()

	var writes int64
	publishWrite := func(d document.Document) error {
		ai := &document.AfterImage{
			Collection: collection,
			Key:        mustID(d),
			Version:    uint64(time.Now().UnixNano()),
			Op:         document.OpInsert,
			Doc:        d,
		}
		env := &core.Envelope{Kind: core.KindWrite, Write: &core.WriteEvent{
			Tenant: tenant, Image: ai, SentNs: time.Now().UnixNano(),
		}}
		data, err := env.Encode()
		if err != nil {
			return err
		}
		writes++
		return bus.Publish(topics.Writes(), data)
	}

	// Warmup at the target rate (not measured).
	runLoad(cfg.Warmup, opsPerSec, 0, w, nil, publishWrite)
	expected := runLoad(cfg.Measure, opsPerSec, cfg.TargetNotifsPerSec, w, stamp, publishWrite)
	time.Sleep(cfg.Drain)
	_ = notifSub.Close()
	<-done

	reg := cluster.Metrics()
	return Point{
		QP: opts.QueryPartitions, WP: opts.WritePartitions,
		Queries: queries, OpsPerSec: opsPerSec,
		Summary: recorder.Snapshot(), Delivered: delivered, Expected: expected,
		Hist: hist, Breakdown: stages.Breakdown(),
		Writes:        writes,
		WritesMatched: reg.Counter("queryindex.writes").Value(),
		CandProbed:    reg.Counter("queryindex.candidates.probed").Value(),
		CandEvaluated: reg.Counter("queryindex.candidates.evaluated").Value(),
		CandMatched:   reg.Counter("queryindex.candidates.matched").Value(),
	}, nil
}

func mustID(d document.Document) string {
	id, _ := d.ID()
	return id
}

// stamp embeds the operation's scheduled send time into a hit document so
// the receiver can compute end-to-end latency (paper §6.1: "the time from
// before inserting an item until after receiving the corresponding
// notification"). Using the scheduled time keeps the measurement open-loop:
// when the system under test cannot absorb the offered rate, client-side
// queueing delay counts against it instead of silently lowering the rate.
func stamp(d document.Document, due time.Time) {
	d["sentNs"] = due.UnixNano()
}

// runLoad publishes documents at the given rate for the duration. Hits —
// documents matching exactly one registered query — are spaced so roughly
// notifTarget of them fire per second (0 disables hits). It returns the
// number of hits written.
func runLoad(duration time.Duration, opsPerSec, notifTarget int, w workload,
	beforeHit func(document.Document, time.Time), publish func(document.Document) error) int {
	if opsPerSec <= 0 || duration <= 0 {
		return 0
	}
	hitEvery := 0
	if notifTarget > 0 {
		hitEvery = opsPerSec / notifTarget
		if hitEvery < 1 {
			hitEvery = 1
		}
	}
	start := time.Now()
	end := start.Add(duration)
	sent := 0
	hits := 0
	hitIdx := 0
	for {
		now := time.Now()
		if !now.Before(end) {
			return hits
		}
		// How many documents should have been sent by now?
		due := int(float64(now.Sub(start)) / float64(time.Second) * float64(opsPerSec))
		for sent < due {
			hit := hitEvery > 0 && sent%hitEvery == 0
			d := w.Doc(hit, hitIdx)
			if hit {
				hitIdx++
				hits++
				if beforeHit != nil {
					// The op was scheduled at start + sent/rate.
					opDue := start.Add(time.Duration(float64(sent) / float64(opsPerSec) * float64(time.Second)))
					beforeHit(d, opDue)
				}
			}
			if err := publish(d); err != nil {
				return hits
			}
			sent++
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// registerSpecs publishes the subscription population and waits until the
// cluster has ingested every request (the paper's preparation phase). The
// publish loop is flow-controlled against the ingestion stage's progress so
// a six-figure population never overruns the in-memory bus buffers.
func registerSpecs(bus eventlayer.Bus, cluster *core.Cluster, topics core.Topics,
	specs []query.Spec) error {
	total := len(specs)
	ingested := func() uint64 {
		var n uint64
		for _, s := range cluster.Stats() {
			if s.Component == "query-ingest" {
				n += s.Executed
			}
		}
		return n
	}
	// The window must stay well under the bus buffer (1<<16) and the task
	// queue (1<<15) so no subscribe request is ever dropped.
	const window = 8192
	deadline := time.Now().Add(5 * time.Minute)
	for i, spec := range specs {
		env := &core.Envelope{Kind: core.KindSubscribe, Subscribe: &core.SubscribeRequest{
			Tenant:         tenant,
			SubscriptionID: fmt.Sprintf("bench-%06d", i),
			Query:          spec,
			TTLMillis:      (10 * time.Minute).Milliseconds(),
		}}
		data, err := env.Encode()
		if err != nil {
			return err
		}
		for uint64(i)-ingested() >= window {
			if !time.Now().Before(deadline) {
				return fmt.Errorf("experiments: query ingestion stalled at %d/%d", ingested(), total)
			}
			time.Sleep(time.Millisecond)
		}
		if err := bus.Publish(topics.Queries(), data); err != nil {
			return err
		}
	}
	// Preparation barrier: the query ingestion stage has executed one tuple
	// per subscription once all requests are installed.
	for time.Now().Before(deadline) {
		if ingested() >= uint64(total) {
			return nil
		}
		time.Sleep(2 * time.Millisecond)
	}
	return fmt.Errorf("experiments: query ingestion did not finish (%d queries)", total)
}

// RunQuaestorPoint measures the same workload through a Quaestor application
// server (§7): the benchmark client calls the server's write API (database
// write + after-image forwarding) and receives events through the server's
// subscription fan-out — one extra hop on both paths.
func RunQuaestorPoint(cfg Config, qp, wp, queries, opsPerSec int) (Point, error) {
	cfg = cfg.Defaults()
	bus := eventlayer.NewMemBus(eventlayer.MemBusOptions{BufferSize: 1 << 16})
	defer bus.Close()
	cluster, err := core.NewCluster(bus, core.Options{
		QueryPartitions:  qp,
		WritePartitions:  wp,
		NodeCapacity:     cfg.NodeCapacity,
		QueryIngestNodes: cfg.QueryIngestNodes,
		WriteIngestNodes: cfg.WriteIngestNodes,
		TickInterval:     100 * time.Millisecond,
		QueueSize:        1 << 15,
	})
	if err != nil {
		return Point{}, err
	}
	if err := cluster.Start(); err != nil {
		return Point{}, err
	}
	defer cluster.Stop()

	db := storage.Open(storage.Options{Shards: 16, OplogCapacity: 1024})
	srv, err := appserver.New(db, bus, appserver.Options{
		Tenant:        tenant,
		WriteCapacity: cfg.AppServerWriteCapacity,
		TTL:           10 * time.Minute,
		// Modest per-subscription buffers: thousands of subscriptions each
		// pre-allocate their channel, so a large buffer here turns into
		// GC-visible bulk memory.
		EventBuffer: 256,
	})
	if err != nil {
		return Point{}, err
	}
	defer srv.Close()

	matching := cfg.MatchingQueries
	if matching > queries {
		matching = queries
	}
	w := loadgen.New(1, matching)
	recorder := metrics.NewLatencyRecorder()
	hist := metrics.NewHistogram(2, 100)
	delivered := 0
	doneCh := make(chan struct{})
	subs := make([]*appserver.Subscription, 0, queries)
	events := make(chan appserver.Event, 1<<15)
	var forwarders sync.WaitGroup
	for i, spec := range w.Queries(queries, matching) {
		sub, err := srv.Subscribe(spec)
		if err != nil {
			return Point{}, fmt.Errorf("experiments: subscribe %d: %w", i, err)
		}
		subs = append(subs, sub)
		forwarders.Add(1)
		go func(c <-chan appserver.Event) {
			defer forwarders.Done()
			for ev := range c {
				select {
				case events <- ev:
				default:
				}
			}
		}(sub.C())
	}
	go func() {
		defer close(doneCh)
		for ev := range events {
			if ev.Type != appserver.EventAdd || ev.Doc == nil {
				continue
			}
			if ts, ok := ev.Doc["sentNs"].(int64); ok {
				lat := time.Duration(time.Now().UnixNano() - ts)
				recorder.Record(lat)
				hist.Record(lat)
				delivered++
			}
		}
	}()

	publish := func(d document.Document) error {
		return srv.Insert(loadgen.Collection, d)
	}
	runLoad(cfg.Warmup, opsPerSec, 0, w, nil, publish)
	expected := runLoad(cfg.Measure, opsPerSec, cfg.TargetNotifsPerSec, w, stamp, publish)
	time.Sleep(cfg.Drain)
	// Close the subscriptions first so the forwarders drain out before the
	// shared sink closes.
	for _, sub := range subs {
		_ = sub.Close()
	}
	forwarders.Wait()
	close(events)
	<-doneCh

	return Point{
		QP: qp, WP: wp, Queries: queries, OpsPerSec: opsPerSec,
		Summary: recorder.Snapshot(), Delivered: delivered, Expected: expected,
		Hist: hist, Breakdown: srv.Metrics().Breakdown(),
	}, nil
}
