package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// RenderSweeps prints a Figure 4/5-style table: sustainable load level per
// cluster size and SLA.
func RenderSweeps(title, axis, unit string, sweeps []Sweep) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	var slas []float64
	if len(sweeps) > 0 {
		for sla := range sweeps[0].Sustained {
			slas = append(slas, sla)
		}
		sort.Float64s(slas)
	}
	fmt.Fprintf(&b, "%-12s", axis)
	for _, sla := range slas {
		fmt.Fprintf(&b, "  p99<%3.0fms", sla)
	}
	fmt.Fprintf(&b, "\n")
	for _, s := range sweeps {
		fmt.Fprintf(&b, "%-12d", s.Partitions)
		for _, sla := range slas {
			fmt.Fprintf(&b, "  %8d", s.Sustained[sla])
		}
		fmt.Fprintf(&b, "\n")
	}
	fmt.Fprintf(&b, "(levels in %s)\n", unit)
	return b.String()
}

// RenderTable3 prints a Table 3-style latency table.
func RenderTable3(title string, points []Point, readHeavy bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-28s %8s %10s %8s %8s\n", "configuration", "avg", "std.dev.", "99%", "max")
	for _, p := range points {
		var label string
		if readHeavy {
			label = fmt.Sprintf("%d QP, %d queries", p.QP, p.Queries)
		} else {
			label = fmt.Sprintf("%d WP, %d ops/s", p.WP, p.OpsPerSec)
		}
		s := p.Summary
		fmt.Fprintf(&b, "%-28s %7.1fms %9.1fms %7.1fms %7.0fms\n",
			label, s.AvgMS, s.StdMS, s.P99MS, s.MaxMS)
	}
	return b.String()
}

// RenderFig6 prints a Figure 6a/6b-style comparison of p99 latencies.
func RenderFig6(title, axis string, pairs []Fig6Pair) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-12s %16s %16s %12s\n", axis, "InvaliDB p99", "Quaestor p99", "overhead")
	for _, p := range pairs {
		inv, qst := p.InvaliDB.Summary.P99MS, p.Quaestor.Summary.P99MS
		note := ""
		if !p.Quaestor.DeliveryOK() {
			note = " (app server saturated)"
		} else if !p.InvaliDB.DeliveryOK() {
			note = " (cluster saturated)"
		}
		fmt.Fprintf(&b, "%-12d %14.1fms %14.1fms %9.1fms%s\n", p.Level, inv, qst, qst-inv, note)
	}
	return b.String()
}

// RenderHistogram prints a Figure 6c/6d-style latency distribution as an
// ASCII bar chart.
func RenderHistogram(title string, pair Fig6Pair) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (level %d)\n", title, pair.Level)
	render := func(name string, p Point) {
		fmt.Fprintf(&b, "%s: n=%d avg=%.1fms p99=%.1fms\n",
			name, p.Summary.Count, p.Summary.AvgMS, p.Summary.P99MS)
		if p.Hist == nil {
			return
		}
		buckets, overflow := p.Hist.Buckets()
		for _, bk := range buckets {
			if bk.Frequency == 0 {
				continue
			}
			bar := strings.Repeat("#", int(bk.Frequency*120))
			fmt.Fprintf(&b, "  %5.0f-%3.0fms %5.1f%% %s\n",
				bk.LowerMS, bk.LowerMS+p.Hist.BucketMS, bk.Frequency*100, bar)
		}
		if overflow > 0 {
			fmt.Fprintf(&b, "  >%8.0fms %5.1f%%\n", p.Hist.UpperMS, overflow*100)
		}
	}
	render("InvaliDB  ", pair.InvaliDB)
	render("Quaestor  ", pair.Quaestor)
	return b.String()
}

// RenderBreakdown prints the per-stage latency decomposition of a measured
// point: where the end-to-end notification latency is spent (write ingestion,
// matching grid, event-layer delivery, appserver dispatch). The standalone
// deployment has no appserver hop, so that row stays empty for it.
func RenderBreakdown(title string, p Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%d QP x %d WP, %d queries, %d ops/s: end-to-end avg=%.1fms p99=%.1fms (n=%d)\n",
		p.QP, p.WP, p.Queries, p.OpsPerSec, p.Summary.AvgMS, p.Summary.P99MS, p.Summary.Count)
	b.WriteString(p.Breakdown.String())
	if p.WritesMatched > 0 {
		perWrite := p.CandidatesPerWrite()
		share := 0.0
		if p.Queries > 0 {
			share = perWrite / float64(p.Queries) * 100
		}
		fmt.Fprintf(&b, "query index selectivity: %.1f candidates/write (%.3f%% of %d queries), %d evaluated, %d matched over %d writes\n",
			perWrite, share, p.Queries, p.CandEvaluated, p.CandMatched, p.WritesMatched)
	}
	return b.String()
}

// RenderBaselines prints the mechanism comparison (paper §3.1 / Table 2
// scaling rows).
func RenderBaselines(results []BaselineResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Real-time query mechanisms under identical workloads\n")
	fmt.Fprintf(&b, "%-32s %10s %10s %12s  %s\n", "mechanism", "avg", "p99", "delivered", "notes")
	for _, r := range results {
		s := r.Point.Summary
		fmt.Fprintf(&b, "%-32s %8.1fms %8.1fms %6d/%-5d  %s\n",
			r.Mechanism, s.AvgMS, s.P99MS, r.Point.Delivered, r.Point.Expected, r.Note)
	}
	return b.String()
}

// RenderTable2 prints the capability matrix (paper Table 2). The InvaliDB
// column reflects behaviour demonstrated by this repository's test suite;
// the baseline columns reflect the implemented mechanisms; the Firebase
// column quotes the paper's documentation-derived entries.
func RenderTable2() string {
	rows := []struct {
		capability string
		pollDiff   string
		logTail    string
		firebase   string
		invalidb   string
	}{
		{"Scales with write TP", "yes", "NO (single node)", "no (1k writes/s cap)", "yes (+write partitions)"},
		{"Scales with # queries", "NO (poll load)", "yes", "partly (100k conns)", "yes (+query partitions)"},
		{"Lag-free notifications", "NO (poll interval)", "yes", "yes", "yes"},
		{"Composition (AND/OR)", "yes", "yes", "partly (no OR)", "yes"},
		{"Ordering", "yes", "yes", "partly (single attr)", "yes (multi-attribute)"},
		{"Limit", "yes", "yes", "yes", "yes"},
		{"Offset", "yes", "yes", "partly (value-based)", "yes"},
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: real-time query implementations compared\n")
	fmt.Fprintf(&b, "%-24s %-18s %-18s %-22s %-24s\n", "capability", "poll-and-diff", "log tailing", "Firebase (paper)", "InvaliDB (this repo)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-24s %-18s %-18s %-22s %-24s\n", r.capability, r.pollDiff, r.logTail, r.firebase, r.invalidb)
	}
	return b.String()
}
