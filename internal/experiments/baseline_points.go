package experiments

import (
	"fmt"
	"sync"
	"time"

	"invalidb/internal/baselines/logtailing"
	"invalidb/internal/baselines/pollanddiff"
	"invalidb/internal/core"
	"invalidb/internal/document"
	"invalidb/internal/loadgen"
	"invalidb/internal/metrics"
	"invalidb/internal/storage"
)

// runLogTailingPoint drives the log-tailing baseline with the same workload
// as the InvaliDB comparison point: FixedQueries active queries and a write
// rate beyond one node's matching capacity. Because the write stream cannot
// be partitioned, the single tailer node falls behind and notification
// latency collapses (paper §3.1).
func runLogTailingPoint(cfg Config, opsPerSec int) (BaselineResult, error) {
	cfg = cfg.Defaults()
	db := storage.Open(storage.Options{Shards: 16, OplogCapacity: 1 << 18})
	engine := logtailing.New(db, logtailing.Options{NodeCapacity: cfg.NodeCapacity})
	defer engine.Close()

	w := loadgen.New(1, cfg.MatchingQueries)
	matching := cfg.MatchingQueries
	recorder := metrics.NewLatencyRecorder()
	delivered := 0
	done := make(chan struct{})
	events := make(chan logtailing.Event, 1<<15)
	var forwarders sync.WaitGroup
	for i, spec := range w.Queries(FixedQueries, matching) {
		sub, _, err := engine.Subscribe(spec)
		if err != nil {
			return BaselineResult{}, fmt.Errorf("log tailing subscribe %d: %w", i, err)
		}
		forwarders.Add(1)
		go func(c <-chan logtailing.Event) {
			defer forwarders.Done()
			for ev := range c {
				select {
				case events <- ev:
				default:
				}
			}
		}(sub.C())
	}
	go func() {
		defer close(done)
		for ev := range events {
			if ev.Type != core.MatchAdd || ev.Doc == nil {
				continue
			}
			if ts, ok := ev.Doc["sentNs"].(int64); ok {
				recorder.Record(time.Duration(time.Now().UnixNano() - ts))
				delivered++
			}
		}
	}()

	write := func(d document.Document) error {
		_, err := db.C(loadgen.Collection).Insert(d)
		return err
	}
	runLoad(cfg.Warmup, opsPerSec, 0, w, nil, write)
	expected := runLoad(cfg.Measure, opsPerSec, cfg.TargetNotifsPerSec, w, stamp, write)
	time.Sleep(cfg.Drain)
	// Shutdown order matters: closing the engine ends the subscription
	// channels, the forwarders drain out, and only then may the shared sink
	// close.
	writes, matchOps := engine.Stats()
	engine.Close()
	forwarders.Wait()
	close(events)
	<-done
	p := Point{
		WP: 1, Queries: FixedQueries, OpsPerSec: opsPerSec,
		Summary: recorder.Snapshot(), Delivered: delivered, Expected: expected,
	}
	return BaselineResult{
		Mechanism: "Log tailing (single node)",
		Point:     p,
		Note: fmt.Sprintf("sustained=%v tailer processed %d writes (%d match-ops)",
			p.SustainedUnder(baselineSLA), writes, matchOps),
	}, nil
}

// runPollAndDiffPoint quantifies poll-and-diff: staleness bounded only by
// the poll interval, and a pull-query load on the database proportional to
// the number of subscriptions (paper §3.1: 1 000 subscriptions at a 10s
// interval are 100 queries/s).
func runPollAndDiffPoint(cfg Config) (BaselineResult, error) {
	cfg = cfg.Defaults()
	db := storage.Open(storage.Options{Shards: 16, OplogCapacity: 1 << 16})
	engine := pollanddiff.New(db, pollanddiff.Options{Interval: scaledPollInterval})
	defer engine.Close()

	w := loadgen.New(1, cfg.MatchingQueries)
	recorder := metrics.NewLatencyRecorder()
	delivered := 0
	done := make(chan struct{})
	events := make(chan pollanddiff.Event, 1<<15)
	var forwarders sync.WaitGroup
	for i, spec := range w.Queries(FixedQueries, cfg.MatchingQueries) {
		sub, err := engine.Subscribe(spec)
		if err != nil {
			return BaselineResult{}, fmt.Errorf("poll-and-diff subscribe %d: %w", i, err)
		}
		forwarders.Add(1)
		go func(c <-chan pollanddiff.Event) {
			defer forwarders.Done()
			for ev := range c {
				select {
				case events <- ev:
				default:
				}
			}
		}(sub.C())
	}
	go func() {
		defer close(done)
		for ev := range events {
			if ev.Type != core.MatchAdd || ev.Doc == nil {
				continue
			}
			if ts, ok := ev.Doc["sentNs"].(int64); ok {
				recorder.Record(time.Duration(time.Now().UnixNano() - ts))
				delivered++
			}
		}
	}()

	engine.DBQueries.Reset()
	write := func(d document.Document) error {
		_, err := db.C(loadgen.Collection).Insert(d)
		return err
	}
	// Modest write rate: poll-and-diff's problem is not write throughput
	// but poll lag and database overhead.
	measure := cfg.Measure
	if measure < 4*scaledPollInterval {
		measure = 4 * scaledPollInterval
	}
	expected := runLoad(measure, 200, cfg.TargetNotifsPerSec, w, stamp, write)
	time.Sleep(scaledPollInterval + cfg.Drain)
	pollRate := engine.DBQueries.RatePerSecond()
	engine.Close()
	forwarders.Wait()
	close(events)
	<-done

	p := Point{
		Queries: FixedQueries, OpsPerSec: 200,
		Summary: recorder.Snapshot(), Delivered: delivered, Expected: expected,
	}
	return BaselineResult{
		Mechanism: "Poll-and-diff",
		Point:     p,
		Note: fmt.Sprintf("avg staleness=%.0fms (interval %v), database poll load=%.0f queries/s for %d subscriptions",
			p.Summary.AvgMS, scaledPollInterval, pollRate, FixedQueries),
	}, nil
}
