package experiments

import (
	"fmt"
	"time"
)

// BaseWriteRate is the fixed write throughput of the read-scalability
// experiments (paper Figure 4: 1 000 ops/s).
const BaseWriteRate = 1000

// FixedQueries is the fixed query population of the write-scalability
// experiments, scaled from the paper's 1 000 active real-time queries.
const FixedQueries = 100

// DefaultSLAs are the paper's p99 latency SLAs in milliseconds.
var DefaultSLAs = []float64{20, 30, 50, 100}

// DefaultPartitions is the paper's cluster size axis.
var DefaultPartitions = []int{1, 2, 4, 8, 16}

// Sweep is one cluster size's load sweep: every measured point plus the
// highest sustained load level per SLA.
type Sweep struct {
	Partitions int
	Points     []Point
	// Sustained maps an SLA (p99 ms) to the highest load level (queries for
	// Figure 4, ops/s for Figure 5) that satisfied it.
	Sustained map[float64]int
}

// perNodeQueryCapacity estimates how many queries one matching node
// sustains at the base write rate: capacity / writes-per-node-per-second.
func perNodeQueryCapacity(cfg Config, opsPerSec int) int {
	return cfg.NodeCapacity / opsPerSec
}

// Fig4 reproduces the read-scalability experiment (paper Figure 4): for each
// query partition count, the number of serviceable real-time queries at a
// fixed write throughput of 1 000 ops/s is found by raising the query
// population until the p99 latency SLA is violated.
func Fig4(cfg Config, partitions []int, slas []float64, progress func(string)) ([]Sweep, error) {
	cfg = cfg.Defaults()
	if len(partitions) == 0 {
		partitions = DefaultPartitions
	}
	if len(slas) == 0 {
		slas = DefaultSLAs
	}
	perNode := perNodeQueryCapacity(cfg, BaseWriteRate)
	step := perNode / 3
	if step < 1 {
		step = 1
	}
	var out []Sweep
	for _, qp := range partitions {
		est := qp * perNode
		sweep, err := runSweep(slas, est, step, progress, func(level int) (Point, error) {
			return RunClusterPoint(cfg, qp, 1, level, BaseWriteRate)
		})
		if err != nil {
			return nil, err
		}
		sweep.Partitions = qp
		out = append(out, sweep)
	}
	return out, nil
}

// Fig5 reproduces the write-scalability experiment (paper Figure 5): for
// each write partition count, sustainable write throughput with a fixed
// population of active real-time queries.
func Fig5(cfg Config, partitions []int, slas []float64, progress func(string)) ([]Sweep, error) {
	cfg = cfg.Defaults()
	if len(partitions) == 0 {
		partitions = DefaultPartitions
	}
	if len(slas) == 0 {
		slas = DefaultSLAs
	}
	perNodeRate := cfg.NodeCapacity / FixedQueries
	step := perNodeRate / 3
	if step < 1 {
		step = 1
	}
	var out []Sweep
	for _, wp := range partitions {
		est := wp * perNodeRate
		sweep, err := runSweep(slas, est, step, progress, func(level int) (Point, error) {
			return RunClusterPoint(cfg, 1, wp, FixedQueries, level)
		})
		if err != nil {
			return nil, err
		}
		sweep.Partitions = wp
		out = append(out, sweep)
	}
	return out, nil
}

// runSweep raises the load level in fixed steps (the paper's methodology:
// "we increased the workload in each experiment series until 99th percentile
// latency exceeded a given threshold") and records the highest level
// sustained under each SLA.
func runSweep(slas []float64, estimate, step int, progress func(string),
	run func(level int) (Point, error)) (Sweep, error) {
	maxSLA := slas[0]
	for _, s := range slas {
		if s > maxSLA {
			maxSLA = s
		}
	}
	sweep := Sweep{Sustained: map[float64]int{}}
	// Start well below the estimated capacity and stop once even the most
	// permissive SLA fails (or a runaway guard trips).
	level := step
	if estimate/2 > step {
		level = (estimate / 2 / step) * step
	}
	guard := estimate*2 + 4*step
	for ; level <= guard; level += step {
		p, err := run(level)
		if err != nil {
			return Sweep{}, err
		}
		if progress != nil {
			progress(fmt.Sprintf("level %d: p99=%.1fms delivered=%d/%d",
				level, p.Summary.P99MS, p.Delivered, p.Expected))
		}
		sweep.Points = append(sweep.Points, p)
		for _, sla := range slas {
			if p.SustainedUnder(sla) && level > sweep.Sustained[sla] {
				sweep.Sustained[sla] = level
			}
		}
		if !p.SustainedUnder(maxSLA) {
			break
		}
	}
	return sweep, nil
}

// Table3a reproduces the read-heavy latency table (paper Table 3a): latency
// statistics at ~80% of capacity — `0.8 x capacity` queries per query
// partition at 1 000 ops/s.
func Table3a(cfg Config, partitions []int) ([]Point, error) {
	cfg = cfg.Defaults()
	if len(partitions) == 0 {
		partitions = DefaultPartitions
	}
	perNode := perNodeQueryCapacity(cfg, BaseWriteRate)
	var out []Point
	for _, qp := range partitions {
		queries := int(0.8 * float64(qp*perNode))
		p, err := RunClusterPoint(cfg, qp, 1, queries, BaseWriteRate)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// Table3b reproduces the write-heavy latency table (paper Table 3b): a fixed
// query population with ~66% of per-partition write capacity per write
// partition.
func Table3b(cfg Config, partitions []int) ([]Point, error) {
	cfg = cfg.Defaults()
	if len(partitions) == 0 {
		partitions = DefaultPartitions
	}
	perNodeRate := cfg.NodeCapacity / FixedQueries
	var out []Point
	for _, wp := range partitions {
		rate := int(0.66 * float64(wp*perNodeRate))
		p, err := RunClusterPoint(cfg, 1, wp, FixedQueries, rate)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// Fig6Pair holds matched standalone-InvaliDB and Quaestor measurements at
// one load level.
type Fig6Pair struct {
	Level    int
	InvaliDB Point
	Quaestor Point
}

// Fig6a compares change-notification latency with and without the
// application server under increasing query load (paper Figure 6a; the
// paper's deployment was 16 QP x 1 WP at 1 000 ops/s).
func Fig6a(cfg Config, qp int, levels []int, progress func(string)) ([]Fig6Pair, error) {
	cfg = cfg.Defaults()
	var out []Fig6Pair
	for _, level := range levels {
		inv, err := RunClusterPoint(cfg, qp, 1, level, BaseWriteRate)
		if err != nil {
			return nil, err
		}
		qst, err := RunQuaestorPoint(cfg, qp, 1, level, BaseWriteRate)
		if err != nil {
			return nil, err
		}
		if progress != nil {
			progress(fmt.Sprintf("queries=%d invalidb p99=%.1fms quaestor p99=%.1fms",
				level, inv.Summary.P99MS, qst.Summary.P99MS))
		}
		out = append(out, Fig6Pair{Level: level, InvaliDB: inv, Quaestor: qst})
	}
	return out, nil
}

// Fig6b compares latency under increasing write throughput (paper Figure
// 6b; 1 QP x 16 WP, 1 000 active queries): the application server's write
// path caps Quaestor throughput while standalone InvaliDB keeps scaling.
func Fig6b(cfg Config, wp int, levels []int, progress func(string)) ([]Fig6Pair, error) {
	cfg = cfg.Defaults()
	var out []Fig6Pair
	for _, level := range levels {
		inv, err := RunClusterPoint(cfg, 1, wp, FixedQueries, level)
		if err != nil {
			return nil, err
		}
		qst, err := RunQuaestorPoint(cfg, 1, wp, FixedQueries, level)
		if err != nil {
			return nil, err
		}
		if progress != nil {
			progress(fmt.Sprintf("ops/s=%d invalidb p99=%.1fms quaestor p99=%.1fms (delivered %d/%d vs %d/%d)",
				level, inv.Summary.P99MS, qst.Summary.P99MS,
				inv.Delivered, inv.Expected, qst.Delivered, qst.Expected))
		}
		out = append(out, Fig6Pair{Level: level, InvaliDB: inv, Quaestor: qst})
	}
	return out, nil
}

// Fig6c measures the latency distributions of the read-heavy snapshot
// (paper Figure 6c: 24 000 queries at 1 000 ops/s — here the scaled ~80%
// capacity point of the given cluster).
func Fig6c(cfg Config, qp int) (Fig6Pair, error) {
	cfg = cfg.Defaults()
	queries := int(0.8 * float64(qp*perNodeQueryCapacity(cfg, BaseWriteRate)))
	inv, err := RunClusterPoint(cfg, qp, 1, queries, BaseWriteRate)
	if err != nil {
		return Fig6Pair{}, err
	}
	qst, err := RunQuaestorPoint(cfg, qp, 1, queries, BaseWriteRate)
	if err != nil {
		return Fig6Pair{}, err
	}
	return Fig6Pair{Level: queries, InvaliDB: inv, Quaestor: qst}, nil
}

// Fig6d measures the latency distributions of the write-heavy snapshot
// (paper Figure 6d: 5 000 ops/s with 1 000 queries — here ~80% of the
// cluster's write capacity).
func Fig6d(cfg Config, wp int) (Fig6Pair, error) {
	cfg = cfg.Defaults()
	rate := int(0.8 * float64(wp*cfg.NodeCapacity/FixedQueries))
	inv, err := RunClusterPoint(cfg, 1, wp, FixedQueries, rate)
	if err != nil {
		return Fig6Pair{}, err
	}
	qst, err := RunQuaestorPoint(cfg, 1, wp, FixedQueries, rate)
	if err != nil {
		return Fig6Pair{}, err
	}
	return Fig6Pair{Level: rate, InvaliDB: inv, Quaestor: qst}, nil
}

// BaselineResult summarizes one mechanism's behaviour under the comparison
// workload (paper §3.1 / Table 2 scaling rows).
type BaselineResult struct {
	Mechanism string
	Point     Point
	// Note captures mechanism-specific observations (poll staleness, DB
	// query overhead, tailer lag).
	Note string
}

// hitLatencySLA for baseline keep-up checks (generous: the question is
// whether the mechanism collapses, not its exact latency).
const baselineSLA = 100.0

// Baselines contrasts InvaliDB's write scalability against the log-tailing
// single-node bottleneck at a write rate beyond one node's capacity, and
// quantifies poll-and-diff's staleness and database overhead at the same
// query population.
func Baselines(cfg Config, progress func(string)) ([]BaselineResult, error) {
	cfg = cfg.Defaults()
	perNodeRate := cfg.NodeCapacity / FixedQueries
	rate := 2 * perNodeRate // beyond a single node, within a 4-partition cluster
	var out []BaselineResult

	inv, err := RunClusterPoint(cfg, 1, 4, FixedQueries, rate)
	if err != nil {
		return nil, err
	}
	out = append(out, BaselineResult{
		Mechanism: "InvaliDB (4 write partitions)",
		Point:     inv,
		Note:      fmt.Sprintf("sustained=%v", inv.SustainedUnder(baselineSLA)),
	})
	if progress != nil {
		progress("invalidb done")
	}

	lt, err := runLogTailingPoint(cfg, rate)
	if err != nil {
		return nil, err
	}
	out = append(out, lt)
	if progress != nil {
		progress("log tailing done")
	}

	pd, err := runPollAndDiffPoint(cfg)
	if err != nil {
		return nil, err
	}
	out = append(out, pd)
	if progress != nil {
		progress("poll-and-diff done")
	}
	return out, nil
}

// scaledPollInterval is the poll-and-diff interval used in the comparison —
// scaled down from Meteor's 10s default the same way measurement phases are.
const scaledPollInterval = 500 * time.Millisecond
