package experiments

import (
	"testing"
)

// TestQueryIndexAblation quantifies the multi-query optimization: with the
// interval index on, per-write cost is the candidate count instead of the
// full query population, so a load far beyond the unindexed capacity is
// sustained by the same node budget.
func TestQueryIndexAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation takes seconds")
	}
	cfg := fastCfg()
	// 10x the unindexed capacity of one node (20 queries at 1 000 ops/s).
	const queries = 200
	without, err := RunClusterPoint(cfg, 1, 1, queries, BaseWriteRate)
	if err != nil {
		t.Fatal(err)
	}
	cfg.EnableQueryIndex = true
	with, err := RunClusterPoint(cfg, 1, 1, queries, BaseWriteRate)
	if err != nil {
		t.Fatal(err)
	}
	if without.SustainedUnder(50) {
		t.Fatalf("unindexed node sustained %d queries (p99=%.1fms) — capacity model broken",
			queries, without.Summary.P99MS)
	}
	if !with.SustainedUnder(50) {
		t.Fatalf("indexed node failed at %d queries (p99=%.1fms, %d/%d) — index ineffective",
			queries, with.Summary.P99MS, with.Delivered, with.Expected)
	}
}
