package experiments

import (
	"strings"
	"testing"
)

// TestSpatioTextIndexSelectivity is the scaled-down version of the `-exp
// spatiotext` run: over a mixed equality/geo/text population, the
// generalized predicate index must keep per-write candidate sets at a tiny
// fraction of the registered queries, while the unindexed baseline probes
// the full population on every write and pays for it in grid-stage latency.
func TestSpatioTextIndexSelectivity(t *testing.T) {
	if testing.Short() {
		t.Skip("spatiotext points take seconds")
	}
	cfg := fastCfg()
	const queries = 12_000
	without, err := RunSpatioTextPoint(cfg, queries, SpatioTextBaseRate, false)
	if err != nil {
		t.Fatal(err)
	}
	with, err := RunSpatioTextPoint(cfg, queries, 200, true)
	if err != nil {
		t.Fatal(err)
	}
	if without.WritesMatched == 0 || with.WritesMatched == 0 {
		t.Fatalf("no writes reached the matching stage (without=%d with=%d)",
			without.WritesMatched, with.WritesMatched)
	}
	// The unindexed node evaluates the full population per write.
	if perWrite := without.CandidatesPerWrite(); perWrite < float64(queries) {
		t.Fatalf("unindexed candidates/write = %.1f, want the full %d", perWrite, queries)
	}
	// The index keeps candidate sets under 1% of the registered queries.
	perWrite := with.CandidatesPerWrite()
	if share := perWrite / queries; share > 0.01 {
		t.Fatalf("indexed candidates/write = %.1f (%.2f%% of %d queries), want <= 1%%",
			perWrite, share*100, queries)
	}
	// And the saved work shows up as grid-stage (matching) latency: the
	// indexed node at 50x the write rate still beats the full scan.
	if with.Breakdown.Grid.AvgMS >= without.Breakdown.Grid.AvgMS {
		t.Fatalf("grid latency: indexed %.3fms >= unindexed %.3fms",
			with.Breakdown.Grid.AvgMS, without.Breakdown.Grid.AvgMS)
	}
	if !with.DeliveryOK() {
		t.Fatalf("indexed point lost notifications: %d/%d", with.Delivered, with.Expected)
	}
	out := RenderSpatioText([]SpatioTextResult{
		{Label: "unindexed (full scan)", Point: without},
		{Label: "indexed", Point: with},
	})
	if !strings.Contains(out, "cand/write") {
		t.Fatalf("render lost the candidate column:\n%s", out)
	}
}
