package experiments

import (
	"fmt"
	"strings"

	"invalidb/internal/loadgen"
)

// Defaults for the spatio-textual hot-region scenario (see
// internal/loadgen/spatiotext.go): a six-figure standing-query population
// split across the equality, geo, and text index families, probed by writes
// skewed toward a hot region and hot topic set.
const (
	// SpatioTextQueries is the standing-query population for the full
	// `-exp spatiotext` run.
	SpatioTextQueries = 100_000
	// SpatioTextBaseRate is the write rate both modes are compared at: low
	// enough that even the unindexed full scan (queries × writes filter
	// evaluations) can keep up, so its grid-stage latency is an honest
	// per-write matching cost rather than queueing collapse.
	SpatioTextBaseRate = 4
	// SpatioTextHighRate is the write rate only the indexed mode sustains
	// (the unindexed full scan costs ~360ms of matching per write at this
	// population, so it cannot absorb even a handful of writes per second).
	SpatioTextHighRate = 800
)

// RunSpatioTextPoint measures the spatio-textual scenario on a 1x1 grid.
// Unlike the paper-shaped points, the matching node runs unthrottled
// (NodeCapacity 0): the point of this scenario is the real CPU cost of the
// matching stage — candidate probe plus filter evaluations — not the
// simulated per-node budget.
func RunSpatioTextPoint(cfg Config, queries, opsPerSec int, indexed bool) (Point, error) {
	cfg = cfg.Defaults()
	matching := cfg.MatchingQueries
	if matching > queries {
		matching = queries
	}
	st := loadgen.NewSpatioText(1, matching)
	opts := clusterOptions(cfg, 1, 1)
	opts.NodeCapacity = 0
	opts.EnableQueryIndex = indexed
	return runPoint(cfg, opts, st, loadgen.SpatioTextCollection, queries, matching, opsPerSec)
}

// SpatioTextResult labels one measured mode of the comparison.
type SpatioTextResult struct {
	Label string
	Point Point
}

// SpatioTextComparison runs the scenario three ways over the same query
// population: unindexed at the base rate (the full-scan baseline), indexed
// at the base rate (same load, candidate-sized probes), and indexed at the
// high rate (a load the full scan cannot absorb at all).
func SpatioTextComparison(cfg Config, queries, baseRate, highRate int, progress func(string)) ([]SpatioTextResult, error) {
	if progress == nil {
		progress = func(string) {}
	}
	runs := []struct {
		label   string
		rate    int
		indexed bool
	}{
		{"unindexed (full scan)", baseRate, false},
		{"indexed", baseRate, true},
		{"indexed", highRate, true},
	}
	var out []SpatioTextResult
	for _, r := range runs {
		progress(fmt.Sprintf("spatiotext: %s @ %d ops/s, %d queries", r.label, r.rate, queries))
		p, err := RunSpatioTextPoint(cfg, queries, r.rate, r.indexed)
		if err != nil {
			return nil, err
		}
		out = append(out, SpatioTextResult{Label: r.label, Point: p})
	}
	return out, nil
}

// RenderSpatioText prints the before/after table: candidate-set size per
// write against the registered population, and where the latency went.
func RenderSpatioText(results []SpatioTextResult) string {
	var b strings.Builder
	if len(results) == 0 {
		return ""
	}
	queries := results[0].Point.Queries
	fmt.Fprintf(&b, "Spatio-textual hot region — generalized predicate index (%d standing queries: equality/geo/text thirds)\n", queries)
	fmt.Fprintf(&b, "%-22s %7s %8s %12s %10s %10s %10s %9s %11s\n",
		"mode", "ops/s", "writes", "cand/write", "cand %", "grid avg", "grid p99", "e2e p99", "delivered")
	for _, r := range results {
		p := r.Point
		share := 0.0
		if p.Queries > 0 {
			share = p.CandidatesPerWrite() / float64(p.Queries) * 100
		}
		fmt.Fprintf(&b, "%-22s %7d %8d %12.1f %9.3f%% %8.2fms %8.2fms %7.1fms %5d/%-5d\n",
			r.Label, p.OpsPerSec, p.WritesMatched, p.CandidatesPerWrite(), share,
			p.Breakdown.Grid.AvgMS, p.Breakdown.Grid.P99MS, p.Summary.P99MS,
			p.Delivered, p.Expected)
	}
	return b.String()
}
