package experiments

import (
	"testing"
	"time"
)

// TestFanoutPointSmall runs a scaled-down fan-out point and checks the
// invariants the full 100k run is graded on: dedup to one upstream per
// query, a closed terminal ledger, and a bounded noisy tenant.
func TestFanoutPointSmall(t *testing.T) {
	cfg := Config{Measure: 300 * time.Millisecond}
	fc := FanoutConfig{
		Clients:       200,
		Queries:       10,
		EventRate:     200,
		Noisy:         true,
		NoisyClients:  40,
		NoisyMaxConns: 8,
		NoisyMaxSubs:  8,
	}
	p, err := RunFanoutPoint(cfg, fc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Subscribed != int64(fc.Clients) {
		t.Fatalf("subscribed %d of %d clients", p.Subscribed, fc.Clients)
	}
	if p.Upstream != fc.Queries {
		t.Fatalf("%d upstream subscriptions for %d distinct queries; dedup broken", p.Upstream, fc.Queries)
	}
	if p.TerminalSeen != p.TerminalWant {
		t.Fatalf("terminal ledger open: %d/%d clients saw the terminal event", p.TerminalSeen, p.TerminalWant)
	}
	if p.DedupRatio < float64(fc.Clients)/float64(fc.Queries) {
		t.Fatalf("dedup ratio %.1f below the %d clients / %d queries floor", p.DedupRatio, fc.Clients, fc.Queries)
	}
	if p.Encoded <= 0 || p.Fanned < p.Encoded {
		t.Fatalf("encode-once counters implausible: %d encoded, %d fanned", p.Encoded, p.Fanned)
	}
	if p.NoisyAdmitted > int64(fc.NoisyMaxConns) {
		t.Fatalf("noisy tenant got %d conns past a %d cap", p.NoisyAdmitted, fc.NoisyMaxConns)
	}
	if p.NoisyRejected == 0 {
		t.Fatal("noisy tenant saw no quota rejections despite overflowing its cap")
	}
}
