package experiments

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"invalidb/internal/appserver"
	"invalidb/internal/core"
	"invalidb/internal/document"
	"invalidb/internal/eventlayer"
	"invalidb/internal/metrics"
	"invalidb/internal/query"
	"invalidb/internal/storage"
)

// Defaults for the `-exp backfill` scenario: subscription admission
// throughput under sustained write load, one-shot scan-and-race bootstrap vs
// the watermark-certified chunked backfill (DESIGN.md §12).
const (
	// BackfillDocs is the pre-populated collection size every bootstrap has
	// to walk.
	BackfillDocs = 20_000
	// BackfillGroups partitions the documents into result sets of
	// BackfillDocs/BackfillGroups documents each; subscribers rotate over
	// the groups.
	BackfillGroups = 8
	// BackfillWriteRate is the sustained write load (ops/s) running for the
	// whole measurement — every admission happens against a moving store.
	BackfillWriteRate = 200
	// BackfillSubscribers is the number of concurrent subscriber loops
	// (subscribe, await the initial result, close, repeat).
	BackfillSubscribers = 8
)

// BackfillPoint is one measured admission-throughput run.
type BackfillPoint struct {
	Mode        string // "bootstrap" (one-shot scan) or "backfill" (chunked)
	Docs        int
	ResultSize  int
	WriteRate   int
	Subscribers int
	// Admitted counts subscriptions that received their initial result
	// inside the measurement window; Failed counts admission timeouts.
	Admitted int
	Failed   int
	Elapsed  time.Duration
	// Latency is the subscribe-to-initial-result distribution.
	Latency metrics.Summary
	// Writes is how many sustained-load updates actually landed during the
	// measurement.
	Writes int64
	// Backfill protocol counters (zero in bootstrap mode): chunks installed
	// by matching cells, chunk rows superseded by in-window deltas,
	// certified cuts, and driver-side chunk re-sends.
	Chunks, Reconciled, Certified, Retries int64
}

// AdmitsPerSec is the headline number: initial results delivered per second.
func (p BackfillPoint) AdmitsPerSec() float64 {
	if p.Elapsed <= 0 {
		return 0
	}
	return float64(p.Admitted) / p.Elapsed.Seconds()
}

// RunBackfillPoint measures admission throughput for one bootstrap mode. The
// store is pre-populated with docs documents split into groups equally-sized
// result sets, a background writer updates documents at writeRate for the
// whole run, and subscribers concurrent loops subscribe, wait for the
// initial result, close, and go again. The matching nodes run unthrottled:
// the comparison is real CPU and protocol cost, not the budget simulation.
func RunBackfillPoint(cfg Config, useBackfill bool, docs, groups, writeRate, subscribers int) (BackfillPoint, error) {
	cfg = cfg.Defaults()
	bus := eventlayer.NewMemBus(eventlayer.MemBusOptions{BufferSize: 1 << 16})
	defer bus.Close()
	opts := clusterOptions(cfg, 2, 2)
	opts.NodeCapacity = 0
	cluster, err := core.NewCluster(bus, opts)
	if err != nil {
		return BackfillPoint{}, err
	}
	if err := cluster.Start(); err != nil {
		return BackfillPoint{}, err
	}
	defer cluster.Stop()

	db := storage.Open(storage.Options{Shards: 16, OplogCapacity: 4096})
	srv, err := appserver.New(db, bus, appserver.Options{
		Tenant:               tenant,
		TTL:                  10 * time.Minute,
		EventBuffer:          256,
		Backfill:             useBackfill,
		BackfillChunkSize:    1024,
		BackfillChunkTimeout: 5 * time.Second,
	})
	if err != nil {
		return BackfillPoint{}, err
	}
	defer srv.Close()

	mode := "bootstrap"
	if useBackfill {
		mode = "backfill"
	}
	for i := 0; i < docs; i++ {
		if err := srv.Insert(backfillCollection, document.Document{
			"_id": fmt.Sprintf("d%06d", i),
			"grp": int64(i % groups),
			"v":   int64(0),
		}); err != nil {
			return BackfillPoint{}, err
		}
	}

	// Sustained write load: version bumps across all groups, so every chunk
	// window of every backfill has concurrent writes to reconcile against.
	stopWrites := make(chan struct{})
	var writerWG sync.WaitGroup
	var writes int64
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		start := time.Now()
		sent := 0
		for {
			select {
			case <-stopWrites:
				return
			default:
			}
			due := int(time.Since(start).Seconds() * float64(writeRate))
			for sent < due {
				key := fmt.Sprintf("d%06d", (sent*2654435761)%docs)
				if err := srv.Update(backfillCollection, key,
					map[string]any{"$set": map[string]any{"v": int64(sent)}}); err == nil {
					atomic.AddInt64(&writes, 1)
				}
				sent++
			}
			time.Sleep(time.Millisecond)
		}
	}()

	recorder := metrics.NewLatencyRecorder()
	var admitted, failed atomic.Int64
	measureStart := time.Now().Add(cfg.Warmup)
	deadline := measureStart.Add(cfg.Measure)
	var subWG sync.WaitGroup
	for g := 0; g < subscribers; g++ {
		subWG.Add(1)
		go func(g int) {
			defer subWG.Done()
			for iter := 0; ; iter++ {
				if !time.Now().Before(deadline) {
					return
				}
				spec := query.Spec{
					Collection: backfillCollection,
					Filter:     map[string]any{"grp": int64((g + iter) % groups)},
				}
				t0 := time.Now()
				sub, err := srv.Subscribe(spec)
				if err != nil {
					failed.Add(1)
					continue
				}
				if awaitInitial(sub, 15*time.Second) {
					if t0.After(measureStart) {
						recorder.Record(time.Since(t0))
						admitted.Add(1)
					}
				} else {
					failed.Add(1)
				}
				_ = sub.Close()
			}
		}(g)
	}
	subWG.Wait()
	close(stopWrites)
	writerWG.Wait()

	creg := cluster.Metrics()
	return BackfillPoint{
		Mode: mode, Docs: docs, ResultSize: docs / groups,
		WriteRate: writeRate, Subscribers: subscribers,
		Admitted: int(admitted.Load()), Failed: int(failed.Load()),
		Elapsed: cfg.Measure, Latency: recorder.Snapshot(),
		Writes:     atomic.LoadInt64(&writes),
		Chunks:     creg.Counter("backfill.chunks").Value(),
		Reconciled: creg.Counter("backfill.reconciled").Value(),
		Certified:  creg.Counter("backfill.certified").Value(),
		Retries:    srv.Metrics().Counter("backfill.retries").Value(),
	}, nil
}

// awaitInitial drains a subscription until its initial result arrives.
func awaitInitial(sub *appserver.Subscription, timeout time.Duration) bool {
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	for {
		select {
		case ev, ok := <-sub.C():
			if !ok {
				return false
			}
			switch ev.Type {
			case appserver.EventInitial:
				return true
			case appserver.EventError:
				return false
			}
		case <-timer.C:
			return false
		}
	}
}

const backfillCollection = "bootstrap"

// BackfillComparison runs the admission-throughput scenario both ways over
// identical stores and write load.
func BackfillComparison(cfg Config, docs, groups, writeRate, subscribers int, progress func(string)) ([]BackfillPoint, error) {
	if progress == nil {
		progress = func(string) {}
	}
	var out []BackfillPoint
	for _, useBackfill := range []bool{false, true} {
		mode := "bootstrap (one-shot scan)"
		if useBackfill {
			mode = "backfill (certified chunks)"
		}
		progress(fmt.Sprintf("backfill: %s — %d docs, %d writes/s, %d subscribers", mode, docs, writeRate, subscribers))
		p, err := RunBackfillPoint(cfg, useBackfill, docs, groups, writeRate, subscribers)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// RenderBackfill prints the before/after admission table.
func RenderBackfill(points []BackfillPoint) string {
	var b strings.Builder
	if len(points) == 0 {
		return ""
	}
	p0 := points[0]
	fmt.Fprintf(&b, "Subscription bootstrap under sustained writes — %d docs, %d-doc results, %d writes/s, %d subscriber loops\n",
		p0.Docs, p0.ResultSize, p0.WriteRate, p0.Subscribers)
	fmt.Fprintf(&b, "%-12s %10s %9s %9s %9s %7s %8s %10s %10s %8s\n",
		"mode", "admitted", "subs/s", "p50", "p99", "failed", "chunks", "reconciled", "certified", "retries")
	for _, p := range points {
		fmt.Fprintf(&b, "%-12s %10d %9.1f %7.1fms %7.1fms %7d %8d %10d %10d %8d\n",
			p.Mode, p.Admitted, p.AdmitsPerSec(),
			p.Latency.P50MS, p.Latency.P99MS,
			p.Failed, p.Chunks, p.Reconciled, p.Certified, p.Retries)
	}
	return b.String()
}
