package experiments

import (
	"strings"
	"testing"
	"time"
)

// fastCfg is a scaled-down configuration so shape tests finish in seconds.
func fastCfg() Config {
	return Config{
		NodeCapacity:       20_000,
		MatchingQueries:    10,
		TargetNotifsPerSec: 40,
		Warmup:             200 * time.Millisecond,
		Measure:            800 * time.Millisecond,
		Drain:              300 * time.Millisecond,
	}
}

func TestRunClusterPointHealthy(t *testing.T) {
	p, err := RunClusterPoint(fastCfg(), 1, 1, 10, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !p.DeliveryOK() {
		t.Fatalf("low-load point lost notifications: %d/%d", p.Delivered, p.Expected)
	}
	if p.Summary.P99MS > 50 {
		t.Fatalf("low-load p99 = %.1fms, expected well under 50ms", p.Summary.P99MS)
	}
	if p.Expected < 10 {
		t.Fatalf("expected notifications = %d, workload generator broken?", p.Expected)
	}
}

// TestReadScalabilityShape is the paper's Figure 4 claim in miniature:
// a query load that saturates one query partition is sustained by two.
func TestReadScalabilityShape(t *testing.T) {
	if testing.Short() {
		t.Skip("scalability shapes take seconds")
	}
	cfg := fastCfg()
	// Per-node capacity at 1 000 ops/s is 20 queries; 30 overloads QP=1 by
	// 1.5x. With QP=4 the rows hold ~7-8 queries each (hash placement of a
	// small population is uneven, so a 4x grid leaves slack for skew).
	overload := 30
	one, err := RunClusterPoint(cfg, 1, 1, overload, BaseWriteRate)
	if err != nil {
		t.Fatal(err)
	}
	four, err := RunClusterPoint(cfg, 4, 1, overload, BaseWriteRate)
	if err != nil {
		t.Fatal(err)
	}
	if one.SustainedUnder(50) {
		t.Fatalf("QP=1 sustained an overload of %d queries (p99=%.1fms, %d/%d) — capacity model broken",
			overload, one.Summary.P99MS, one.Delivered, one.Expected)
	}
	if !four.SustainedUnder(50) {
		t.Fatalf("QP=4 failed at %d queries (p99=%.1fms, %d/%d) — read scalability missing",
			overload, four.Summary.P99MS, four.Delivered, four.Expected)
	}
}

// TestWriteScalabilityShape is Figure 5 in miniature: write throughput that
// saturates one write partition is sustained by four.
func TestWriteScalabilityShape(t *testing.T) {
	if testing.Short() {
		t.Skip("scalability shapes take seconds")
	}
	cfg := fastCfg()
	const queries = 20 // per-node write capacity = 20k/20 = 1 000 ops/s
	overload := 2000
	one, err := RunClusterPoint(cfg, 1, 1, queries, overload)
	if err != nil {
		t.Fatal(err)
	}
	four, err := RunClusterPoint(cfg, 1, 4, queries, overload)
	if err != nil {
		t.Fatal(err)
	}
	if one.SustainedUnder(50) {
		t.Fatalf("WP=1 sustained %d ops/s (p99=%.1fms, %d/%d) — capacity model broken",
			overload, one.Summary.P99MS, one.Delivered, one.Expected)
	}
	if !four.SustainedUnder(50) {
		t.Fatalf("WP=4 failed at %d ops/s (p99=%.1fms, %d/%d) — write scalability missing",
			overload, four.Summary.P99MS, four.Delivered, four.Expected)
	}
}

// TestQuaestorOverheadIsSmall is Figure 6a's claim: the application server
// adds a small, roughly constant latency overhead at moderate load.
func TestQuaestorOverheadIsSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("comparison points take seconds")
	}
	cfg := fastCfg()
	inv, err := RunClusterPoint(cfg, 1, 1, 10, 200)
	if err != nil {
		t.Fatal(err)
	}
	qst, err := RunQuaestorPoint(cfg, 1, 1, 10, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !qst.DeliveryOK() {
		t.Fatalf("quaestor lost notifications at low load: %d/%d", qst.Delivered, qst.Expected)
	}
	overhead := qst.Summary.AvgMS - inv.Summary.AvgMS
	if overhead > 20 {
		t.Fatalf("app server overhead = %.1fms avg, expected small (inv %.1f, qst %.1f)",
			overhead, inv.Summary.AvgMS, qst.Summary.AvgMS)
	}
}

// TestAppServerWriteCeiling is Figure 6b's claim: the single application
// server caps write throughput below what the cluster itself sustains.
func TestAppServerWriteCeiling(t *testing.T) {
	if testing.Short() {
		t.Skip("comparison points take seconds")
	}
	cfg := fastCfg()
	cfg.AppServerWriteCapacity = 500
	const queries = 10 // cluster write capacity: 20k/10 = 2 000 ops/s
	rate := 1200       // beyond the app server's 500, within the cluster's 2 000
	inv, err := RunClusterPoint(cfg, 1, 1, queries, rate)
	if err != nil {
		t.Fatal(err)
	}
	qst, err := RunQuaestorPoint(cfg, 1, 1, queries, rate)
	if err != nil {
		t.Fatal(err)
	}
	if !inv.SustainedUnder(100) {
		t.Fatalf("standalone cluster failed below its capacity (p99=%.1fms %d/%d)",
			inv.Summary.P99MS, inv.Delivered, inv.Expected)
	}
	if qst.SustainedUnder(100) {
		t.Fatalf("quaestor sustained %d ops/s despite a %d ops/s app-server ceiling",
			rate, cfg.AppServerWriteCapacity)
	}
}

func TestBaselinesComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("baseline comparison takes seconds")
	}
	cfg := fastCfg()
	results, err := Baselines(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	byName := map[string]BaselineResult{}
	for _, r := range results {
		byName[r.Mechanism] = r
	}
	inv := byName["InvaliDB (4 write partitions)"]
	lt := byName["Log tailing (single node)"]
	pd := byName["Poll-and-diff"]
	if !inv.Point.SustainedUnder(baselineSLA) {
		t.Fatalf("InvaliDB did not sustain the comparison load: p99=%.1fms %d/%d",
			inv.Point.Summary.P99MS, inv.Point.Delivered, inv.Point.Expected)
	}
	if lt.Point.SustainedUnder(baselineSLA) {
		t.Fatalf("log tailing sustained a load beyond single-node capacity: p99=%.1fms %d/%d",
			lt.Point.Summary.P99MS, lt.Point.Delivered, lt.Point.Expected)
	}
	// Poll-and-diff staleness averages around half the poll interval.
	if pd.Point.Summary.AvgMS < 50 {
		t.Fatalf("poll-and-diff avg staleness = %.1fms; expected lag in the order of the %v interval",
			pd.Point.Summary.AvgMS, scaledPollInterval)
	}
	out := RenderBaselines(results)
	if !strings.Contains(out, "Poll-and-diff") {
		t.Fatal("render lost a mechanism")
	}
}

func TestRenderers(t *testing.T) {
	sweeps := []Sweep{{Partitions: 1, Sustained: map[float64]int{20: 100, 50: 150}},
		{Partitions: 2, Sustained: map[float64]int{20: 200, 50: 300}}}
	if s := RenderSweeps("Fig 4", "QP", "queries", sweeps); !strings.Contains(s, "p99< 20ms") {
		t.Fatalf("sweep render: %s", s)
	}
	pts := []Point{{QP: 1, Queries: 100}}
	if s := RenderTable3("Table 3a", pts, true); !strings.Contains(s, "1 QP") {
		t.Fatalf("table render: %s", s)
	}
	pairs := []Fig6Pair{{Level: 500}}
	if s := RenderFig6("Fig 6a", "queries", pairs); !strings.Contains(s, "500") {
		t.Fatalf("fig6 render: %s", s)
	}
	if s := RenderTable2(); !strings.Contains(s, "Scales with write TP") {
		t.Fatalf("table2 render: %s", s)
	}
}

func TestDefaults(t *testing.T) {
	c := Config{}.Defaults()
	if c.NodeCapacity != 150_000 || c.MatchingQueries != 40 || c.WriteIngestNodes != 4 {
		t.Fatalf("defaults: %+v", c)
	}
}
