package experiments

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"invalidb/internal/appserver"
	"invalidb/internal/coordinator"
	"invalidb/internal/core"
	"invalidb/internal/document"
	"invalidb/internal/eventlayer"
	"invalidb/internal/metrics"
	"invalidb/internal/query"
	"invalidb/internal/storage"
)

// Defaults for the `-exp resize` scenario: notification continuity and
// latency across a live query-partition resize of a multi-process grid
// (DESIGN.md §13). Two simulated server processes share one bus the way real
// processes share a broker; a coordinator grows the grid 2x2 -> 3x2 while a
// sustained write stream keeps every phase honest.
const (
	// ResizeWriteRate is the sustained write load (ops/s) flowing before,
	// during, and after the resize. Every write matches the measured
	// subscription, so it doubles as the notification rate.
	ResizeWriteRate = 200
	// ResizeChunkSize is the backfill chunk size migrations run with.
	ResizeChunkSize = 256
)

// ResizePoint is one measured live-resize run.
type ResizePoint struct {
	WriteRate int
	Writes    int
	// Before/During/After split the write-to-notification latency stream at
	// the moment AddQueryPartition was called and the moment the fleet
	// converged on the new epoch.
	Before, During, After metrics.Summary
	// ResizeTook is publish-to-convergence for the new epoch.
	ResizeTook time.Duration
	Epoch      uint64
	QP, WP     int
	// Continuity ledger: every key is written exactly once, so every key must
	// be delivered exactly one add event.
	Dropped, Duplicated, Errors int
	// FinalMatch reports whether the maintained result equaled the quiesced
	// pull query at the end of the run.
	FinalMatch bool
	// Migrations counts subscriptions the appserver moved to a new owner;
	// Replayed counts retention-ring writes the matching cells re-applied
	// inside chunk watermark windows while doing so.
	Migrations, Replayed int64
}

// RunResizePoint boots a two-process grid (nodes "a" and "b", two slots
// each), subscribes, sustains writeRate inserts per second, grows the grid
// from 2 to 3 query partitions mid-stream, and audits that no notification
// was dropped or duplicated while measuring per-phase latency.
func RunResizePoint(cfg Config, writeRate int) (ResizePoint, error) {
	cfg = cfg.Defaults()
	bus := eventlayer.NewMemBus(eventlayer.MemBusOptions{BufferSize: 1 << 16})
	defer bus.Close()

	var clusters []*core.Cluster
	for _, name := range []string{"a", "b"} {
		cl, err := core.NewCluster(bus, core.Options{
			NodeID:             name,
			GridSlots:          2,
			MaxWritePartitions: 2,
			EnableAcking:       true,
			TickInterval:       20 * time.Millisecond,
			HeartbeatInterval:  20 * time.Millisecond,
			RetentionTime:      5 * time.Second,
			QueueSize:          1 << 15,
		})
		if err != nil {
			return ResizePoint{}, err
		}
		if err := cl.Start(); err != nil {
			return ResizePoint{}, err
		}
		defer cl.Stop()
		clusters = append(clusters, cl)
	}
	coord, err := coordinator.New(bus, coordinator.Options{
		QueryPartitions:   2,
		WritePartitions:   2,
		RepublishInterval: 20 * time.Millisecond,
	})
	if err != nil {
		return ResizePoint{}, err
	}
	if err := coord.Start(); err != nil {
		return ResizePoint{}, err
	}
	defer coord.Stop()
	if !coord.WaitConverged(10 * time.Second) {
		return ResizePoint{}, fmt.Errorf("experiments: grid never converged on the initial map")
	}

	db := storage.Open(storage.Options{Shards: 16, OplogCapacity: 4096})
	srv, err := appserver.New(db, bus, appserver.Options{
		Tenant:               tenant,
		TTL:                  10 * time.Minute,
		EventBuffer:          1 << 14,
		Backfill:             true,
		BackfillChunkSize:    ResizeChunkSize,
		BackfillChunkTimeout: 5 * time.Second,
	})
	if err != nil {
		return ResizePoint{}, err
	}
	defer srv.Close()

	spec := query.Spec{
		Collection: resizeCollection,
		Filter:     map[string]any{"v": map[string]any{"$gte": int64(0)}},
	}
	sub, err := srv.Subscribe(spec)
	if err != nil {
		return ResizePoint{}, err
	}
	if !awaitInitial(sub, 15*time.Second) {
		return ResizePoint{}, fmt.Errorf("experiments: subscription never admitted")
	}

	// Drain notifications: per-key add ledger plus per-phase latency,
	// bucketed by receive time against the resize window markers.
	var (
		mu        sync.Mutex
		adds      = map[string]int{}
		errEvents int
	)
	recBefore := metrics.NewLatencyRecorder()
	recDuring := metrics.NewLatencyRecorder()
	recAfter := metrics.NewLatencyRecorder()
	var resizeStartNs, resizeEndNs atomic.Int64
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for ev := range sub.C() {
			switch ev.Type {
			case appserver.EventError:
				mu.Lock()
				errEvents++
				mu.Unlock()
			case appserver.EventAdd:
				now := time.Now().UnixNano()
				mu.Lock()
				adds[ev.Key]++
				mu.Unlock()
				ts, ok := ev.Doc["sentNs"].(int64)
				if !ok {
					continue
				}
				lat := time.Duration(now - ts)
				rs, re := resizeStartNs.Load(), resizeEndNs.Load()
				switch {
				case rs == 0 || now < rs:
					recBefore.Record(lat)
				case re == 0 || now < re:
					recDuring.Record(lat)
				default:
					recAfter.Record(lat)
				}
			}
		}
	}()

	// Sustained open-loop writer: sentNs carries the scheduled send time, so
	// client-side queueing counts against the system, not for it.
	stopWrites := make(chan struct{})
	var writerWG sync.WaitGroup
	var writes atomic.Int64
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		start := time.Now()
		sent := 0
		for {
			select {
			case <-stopWrites:
				return
			default:
			}
			due := int(time.Since(start).Seconds() * float64(writeRate))
			for sent < due {
				opDue := start.Add(time.Duration(float64(sent) / float64(writeRate) * float64(time.Second)))
				d := document.Document{
					"_id":    fmt.Sprintf("r%06d", sent),
					"v":      int64(sent),
					"sentNs": opDue.UnixNano(),
				}
				if err := srv.Insert(resizeCollection, d); err == nil {
					writes.Add(1)
				}
				sent++
			}
			time.Sleep(time.Millisecond)
		}
	}()

	// Phase 1: steady state. Phase 2: resize published, fleet migrating.
	// Phase 3: steady state on the widened grid.
	time.Sleep(cfg.Measure)
	resizeStartNs.Store(time.Now().UnixNano())
	if err := coord.AddQueryPartition(); err != nil {
		close(stopWrites)
		writerWG.Wait()
		return ResizePoint{}, err
	}
	if !coord.WaitConverged(30 * time.Second) {
		close(stopWrites)
		writerWG.Wait()
		return ResizePoint{}, fmt.Errorf("experiments: grid never converged on the resized map")
	}
	resizeEndNs.Store(time.Now().UnixNano())
	took := time.Duration(resizeEndNs.Load() - resizeStartNs.Load())
	time.Sleep(cfg.Measure)
	close(stopWrites)
	writerWG.Wait()
	total := int(writes.Load())

	// Continuity audit against the quiesced pull query: wait for the tail of
	// in-flight notifications, then require the exactly-once ledger and the
	// maintained result to both hold.
	finalMatch := false
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		want, err := srv.Query(spec)
		if err != nil {
			return ResizePoint{}, err
		}
		mu.Lock()
		delivered := len(adds)
		mu.Unlock()
		if delivered >= total && len(sub.Result()) == len(want) {
			finalMatch = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	time.Sleep(200 * time.Millisecond) // let straggling duplicates land before auditing
	_ = sub.Close()
	<-drained

	dropped, duplicated := 0, 0
	mu.Lock()
	for i := 0; i < total; i++ {
		switch n := adds[fmt.Sprintf("r%06d", i)]; {
		case n == 0:
			dropped++
		case n > 1:
			duplicated++
		}
	}
	errs := errEvents
	mu.Unlock()

	var replayed int64
	for _, cl := range clusters {
		replayed += cl.Metrics().Counter("backfill.replayed").Value()
	}
	m := coord.CurrentMap()
	return ResizePoint{
		WriteRate: writeRate, Writes: total,
		Before: recBefore.Snapshot(), During: recDuring.Snapshot(), After: recAfter.Snapshot(),
		ResizeTook: took,
		//invalidb:allow epochcapture the experiment report records the epoch's shape as data, it never routes by it
		Epoch:      m.Epoch, QP: m.QueryPartitions, WP: m.WritePartitions,
		Dropped: dropped, Duplicated: duplicated, Errors: errs,
		FinalMatch: finalMatch,
		Migrations: srv.Metrics().Counter("appserver.migrations").Value(),
		Replayed:   replayed,
	}, nil
}

const resizeCollection = "resize"

// RenderResize prints the per-phase latency table and the continuity ledger.
func RenderResize(p ResizePoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Live grid resize under sustained writes — 2x2 -> %dx%d (AddQueryPartition), %d writes/s, two simulated server processes\n",
		p.QP, p.WP, p.WriteRate)
	fmt.Fprintf(&b, "%-8s %8s %9s %9s %9s\n", "phase", "notifs", "p50", "p99", "max")
	for _, row := range []struct {
		name string
		s    metrics.Summary
	}{{"before", p.Before}, {"during", p.During}, {"after", p.After}} {
		fmt.Fprintf(&b, "%-8s %8d %7.1fms %7.1fms %7.1fms\n",
			row.name, row.s.Count, row.s.P50MS, row.s.P99MS, row.s.MaxMS)
	}
	fmt.Fprintf(&b, "epoch %d converged in %v; %d subscription migrations, %d watermark-window replays\n",
		p.Epoch, p.ResizeTook.Round(time.Millisecond), p.Migrations, p.Replayed)
	fmt.Fprintf(&b, "continuity: %d writes, %d dropped, %d duplicated, %d error events; final result matches pull query: %v\n",
		p.Writes, p.Dropped, p.Duplicated, p.Errors, p.FinalMatch)
	return b.String()
}
