package logtailing

import (
	"fmt"
	"testing"
	"time"

	"invalidb/internal/core"
	"invalidb/internal/document"
	"invalidb/internal/query"
	"invalidb/internal/storage"
)

func recvEvent(t *testing.T, sub *Subscription, want core.MatchType) Event {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case ev, ok := <-sub.C():
			if !ok {
				t.Fatal("subscription closed")
			}
			if ev.Type == want {
				return ev
			}
		case <-deadline:
			t.Fatalf("timed out waiting for %v", want)
		}
	}
}

func TestLogTailingLifecycle(t *testing.T) {
	db := storage.Open(storage.Options{})
	_, _ = db.C("c").Insert(document.Document{"_id": "pre", "x": 1})
	e := New(db, Options{})
	defer e.Close()

	sub, initial, err := e.Subscribe(query.Spec{Collection: "c", Filter: map[string]any{"x": 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(initial) != 1 {
		t.Fatalf("initial = %v", initial)
	}
	_, _ = db.C("c").Insert(document.Document{"_id": "k", "x": 1})
	if ev := recvEvent(t, sub, core.MatchAdd); ev.Key != "k" {
		t.Fatalf("add = %+v", ev)
	}
	_, _ = db.C("c").FindAndModify("k", map[string]any{"$set": map[string]any{"y": 2}}, false)
	recvEvent(t, sub, core.MatchChange)
	_, _ = db.C("c").FindAndModify("k", map[string]any{"$set": map[string]any{"x": 9}}, false)
	recvEvent(t, sub, core.MatchRemove)
	_, _ = db.C("c").Delete("pre")
	recvEvent(t, sub, core.MatchRemove)
}

func TestLogTailingLagFree(t *testing.T) {
	// Unlike poll-and-diff, log tailing delivers immediately.
	db := storage.Open(storage.Options{})
	e := New(db, Options{})
	defer e.Close()
	sub, _, err := e.Subscribe(query.Spec{Collection: "c", Filter: map[string]any{"x": 1}})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, _ = db.C("c").Insert(document.Document{"_id": "k", "x": 1})
	recvEvent(t, sub, core.MatchAdd)
	if lag := time.Since(start); lag > 100*time.Millisecond {
		t.Fatalf("log tailing lag = %v, expected immediate delivery", lag)
	}
}

func TestLogTailingMatchOpsScaleWithQueries(t *testing.T) {
	// The single node pays #queries match-ops per write — the §3.1
	// bottleneck.
	db := storage.Open(storage.Options{})
	e := New(db, Options{})
	defer e.Close()
	const queries = 10
	for i := 0; i < queries; i++ {
		if _, _, err := e.Subscribe(query.Spec{Collection: "c", Filter: map[string]any{"x": i}}); err != nil {
			t.Fatal(err)
		}
	}
	const writes = 50
	for i := 0; i < writes; i++ {
		_, _ = db.C("c").Insert(document.Document{"_id": fmt.Sprint(i), "x": -1})
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		w, ops := e.Stats()
		if w == writes {
			if ops != writes*queries {
				t.Fatalf("matchOps = %d, want %d", ops, writes*queries)
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("tailer never caught up")
}

func TestLogTailingThrottledNodeFallsBehind(t *testing.T) {
	// With a capacity budget, high write load on many queries delays
	// delivery: the write stream is not partitionable, so the node saturates.
	db := storage.Open(storage.Options{})
	e := New(db, Options{NodeCapacity: 2000}) // 2k match-ops/s
	defer e.Close()
	const queries = 20
	for i := 0; i < queries; i++ {
		if _, _, err := e.Subscribe(query.Spec{Collection: "c", Filter: map[string]any{"x": i}}); err != nil {
			t.Fatal(err)
		}
	}
	// 300 writes x 20 queries = 6000 match-ops = ~3s at capacity; after
	// 500ms the tailer must be visibly behind.
	for i := 0; i < 300; i++ {
		_, _ = db.C("c").Insert(document.Document{"_id": fmt.Sprint(i), "x": -1})
	}
	time.Sleep(500 * time.Millisecond)
	w, _ := e.Stats()
	if w >= 300 {
		t.Fatalf("throttled tailer processed all %d writes in 500ms; capacity model broken", w)
	}
	e.Close()
}

func TestLogTailingUnsubscribe(t *testing.T) {
	db := storage.Open(storage.Options{})
	e := New(db, Options{})
	defer e.Close()
	sub, _, _ := e.Subscribe(query.Spec{Collection: "c", Filter: map[string]any{"x": 1}})
	e.Unsubscribe(sub)
	e.Unsubscribe(sub) // idempotent
	_, _ = db.C("c").Insert(document.Document{"_id": "k", "x": 1})
	time.Sleep(50 * time.Millisecond)
	if _, ok := <-sub.C(); ok {
		t.Fatal("closed subscription received an event")
	}
}
