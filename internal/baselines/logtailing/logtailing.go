// Package logtailing implements the log-tailing real-time query mechanism
// (paper §3.1) used by Meteor's oplog mode, RethinkDB and Parse: a single
// application-server process tails the database's replication log and
// matches every write against every active real-time query. Change discovery
// is immediate (no poll staleness) and the approach scales with the number
// of queries partitioned across servers — but the write stream itself cannot
// be partitioned: every server must keep up with the combined write
// throughput of all database partitions, so a single node's matching
// capacity bounds overall sustainable write throughput. This is the
// scale-prohibitive bottleneck InvaliDB's second partitioning dimension
// removes.
package logtailing

import (
	"fmt"
	"sync"
	"time"

	"invalidb/internal/core"
	"invalidb/internal/document"
	"invalidb/internal/query"
	"invalidb/internal/storage"
)

// Options tunes the engine.
type Options struct {
	// NodeCapacity throttles the tailer to this many match-operations per
	// second (one write evaluated against one query), modelling the single
	// node's CPU budget. Zero disables throttling.
	NodeCapacity int
	// EventBuffer is the per-subscription event queue. Default 1024.
	EventBuffer int
}

// Event is one result change.
type Event struct {
	Type core.MatchType
	Key  string
	Doc  document.Document
}

// Engine tails the oplog on one node and matches all queries against all
// writes.
type Engine struct {
	db     *storage.DB
	opts   Options
	tailer *storage.Tailer

	mu     sync.Mutex
	subs   map[*Subscription]struct{}
	closed bool
	wg     sync.WaitGroup

	// QueueDepth-ish accounting: matches performed, writes processed.
	matchOps uint64
	writes   uint64

	bucket *bucket
}

// New starts a log-tailing engine over the database's oplog.
func New(db *storage.DB, opts Options) *Engine {
	if opts.EventBuffer <= 0 {
		opts.EventBuffer = 1024
	}
	e := &Engine{
		db:     db,
		opts:   opts,
		tailer: db.Oplog().Tail(db.Oplog().LastSeq()),
		subs:   map[*Subscription]struct{}{},
	}
	if opts.NodeCapacity > 0 {
		e.bucket = newBucket(float64(opts.NodeCapacity))
	}
	e.wg.Add(1)
	go e.tailLoop()
	return e
}

// Subscription is one active log-tailing real-time query.
type Subscription struct {
	q       *query.Query
	events  chan Event
	tracked map[string]struct{}

	mu     sync.Mutex
	closed bool
}

// Subscribe activates a query. The initial result comes from a pull query;
// subsequent oplog entries produce change events.
func (e *Engine) Subscribe(spec query.Spec) (*Subscription, []document.Document, error) {
	q, err := query.Compile(spec)
	if err != nil {
		return nil, nil, err
	}
	initial, err := e.db.C(q.Collection).FindEntries(q)
	if err != nil {
		return nil, nil, err
	}
	sub := &Subscription{
		q:       q,
		events:  make(chan Event, e.opts.EventBuffer),
		tracked: map[string]struct{}{},
	}
	docs := make([]document.Document, 0, len(initial))
	for _, en := range initial {
		sub.tracked[en.Key] = struct{}{}
		docs = append(docs, en.Doc)
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, nil, fmt.Errorf("logtailing: engine closed")
	}
	e.subs[sub] = struct{}{}
	e.mu.Unlock()
	return sub, docs, nil
}

// C streams change events.
func (s *Subscription) C() <-chan Event { return s.events }

// Unsubscribe removes the subscription.
func (e *Engine) Unsubscribe(sub *Subscription) {
	e.mu.Lock()
	_, ok := e.subs[sub]
	delete(e.subs, sub)
	e.mu.Unlock()
	if ok {
		sub.mu.Lock()
		sub.closed = true
		close(sub.events)
		sub.mu.Unlock()
	}
}

// Close stops the tailer and all subscriptions.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	subs := make([]*Subscription, 0, len(e.subs))
	for sub := range e.subs {
		subs = append(subs, sub)
	}
	e.subs = map[*Subscription]struct{}{}
	e.mu.Unlock()
	for _, sub := range subs {
		sub.mu.Lock()
		sub.closed = true
		close(sub.events)
		sub.mu.Unlock()
	}
	e.tailer.Close()
	e.wg.Wait()
}

// Stats reports writes processed and match operations performed.
func (e *Engine) Stats() (writes, matchOps uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.writes, e.matchOps
}

// tailLoop is the single-node bottleneck: every oplog entry is matched
// against every active query on this one goroutine.
func (e *Engine) tailLoop() {
	defer e.wg.Done()
	for {
		ai, err := e.tailer.Next()
		if err != nil || ai == nil {
			return // lagged beyond the capped log or closed
		}
		e.mu.Lock()
		cost := len(e.subs)
		if cost == 0 {
			cost = 1
		}
		e.writes++
		e.matchOps += uint64(cost)
		subs := make([]*Subscription, 0, len(e.subs))
		for s := range e.subs {
			subs = append(subs, s)
		}
		e.mu.Unlock()
		if e.bucket != nil {
			e.bucket.take(float64(cost))
		}
		for _, s := range subs {
			e.processImage(s, ai)
		}
	}
}

func (e *Engine) processImage(s *Subscription, ai *document.AfterImage) {
	if ai.Collection != s.q.Collection {
		return
	}
	isMatch := ai.Op != document.OpDelete && s.q.Match(ai.Doc)
	_, was := s.tracked[ai.Key]
	var ev Event
	switch {
	case isMatch && !was:
		s.tracked[ai.Key] = struct{}{}
		ev = Event{Type: core.MatchAdd, Key: ai.Key, Doc: ai.Doc}
	case isMatch && was:
		ev = Event{Type: core.MatchChange, Key: ai.Key, Doc: ai.Doc}
	case !isMatch && was:
		delete(s.tracked, ai.Key)
		ev = Event{Type: core.MatchRemove, Key: ai.Key}
	default:
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	select {
	case s.events <- ev:
	default: // lagging consumer loses events, as under real overload
	}
}

// bucket is a blocking token bucket (same model as the cluster's matching
// nodes) for the tailer's single-node capacity.
type bucket struct {
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

func newBucket(rate float64) *bucket {
	return &bucket{rate: rate, burst: rate * 0.05, last: time.Now()}
}

func (b *bucket) take(n float64) {
	now := time.Now()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	b.last = now
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.tokens -= n
	if b.tokens < 0 {
		time.Sleep(time.Duration(-b.tokens / b.rate * float64(time.Second)))
		b.last = time.Now()
		b.tokens = 0
	}
}
