// Package pollanddiff implements the poll-and-diff real-time query mechanism
// (paper §3.1), the approach of Meteor's default mode: every subscription
// periodically re-executes its query against the database ("poll") and
// compares the fresh result with the last known one ("diff") to compute
// change events. It inherits the database's full query expressiveness but
// (1) staleness is bounded only by the poll interval and (2) every active
// subscription adds pull-query load — 1 000 subscriptions at Meteor's 10 s
// default interval mean 100 queries/s against the database, which is what
// makes the approach collapse under many concurrent real-time queries.
package pollanddiff

import (
	"fmt"
	"sync"
	"time"

	"invalidb/internal/core"
	"invalidb/internal/document"
	"invalidb/internal/metrics"
	"invalidb/internal/query"
	"invalidb/internal/storage"
)

// Options tunes the engine.
type Options struct {
	// Interval is the poll period (Meteor's default is 10s). Default 10s.
	Interval time.Duration
	// EventBuffer is the per-subscription event queue. Default 1024.
	EventBuffer int
}

// Event is one result change detected by a diff.
type Event struct {
	Type core.MatchType
	Key  string
	Doc  document.Document
	// Index is the new position for sorted queries, -1 otherwise.
	Index int
}

// Engine runs poll-and-diff subscriptions over a database.
type Engine struct {
	db   *storage.DB
	opts Options

	mu     sync.Mutex
	subs   map[*Subscription]struct{}
	closed bool

	// DBQueries counts pull queries issued by polling — the overhead metric
	// the paper quotes.
	DBQueries *metrics.Counter
}

// New creates a poll-and-diff engine.
func New(db *storage.DB, opts Options) *Engine {
	if opts.Interval <= 0 {
		opts.Interval = 10 * time.Second
	}
	if opts.EventBuffer <= 0 {
		opts.EventBuffer = 1024
	}
	return &Engine{
		db:        db,
		opts:      opts,
		subs:      map[*Subscription]struct{}{},
		DBQueries: metrics.NewCounter(),
	}
}

// Subscription is one active poll-and-diff real-time query.
type Subscription struct {
	e      *Engine
	q      *query.Query
	events chan Event

	mu     sync.Mutex
	known  map[string]uint64 // key -> version
	order  []string          // previous result order (sorted queries)
	closed bool
	done   chan struct{}
}

// Subscribe activates a real-time query: the initial result is delivered
// synchronously via Result; change events appear on C after each poll.
func (e *Engine) Subscribe(spec query.Spec) (*Subscription, error) {
	q, err := query.Compile(spec)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, fmt.Errorf("pollanddiff: engine closed")
	}
	sub := &Subscription{
		e:      e,
		q:      q,
		events: make(chan Event, e.opts.EventBuffer),
		known:  map[string]uint64{},
		done:   make(chan struct{}),
	}
	e.subs[sub] = struct{}{}
	e.mu.Unlock()

	// Initial poll seeds the known state without emitting events.
	if _, err := sub.poll(false); err != nil {
		sub.Close()
		return nil, err
	}
	go sub.loop()
	return sub, nil
}

// C streams change events.
func (s *Subscription) C() <-chan Event { return s.events }

// Close stops polling.
func (s *Subscription) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.done)
	close(s.events)
	s.mu.Unlock()
	s.e.mu.Lock()
	delete(s.e.subs, s)
	s.e.mu.Unlock()
}

// Close stops the engine and all subscriptions.
func (e *Engine) Close() {
	e.mu.Lock()
	e.closed = true
	subs := make([]*Subscription, 0, len(e.subs))
	for s := range e.subs {
		subs = append(subs, s)
	}
	e.mu.Unlock()
	for _, s := range subs {
		s.Close()
	}
}

// ActiveSubscriptions reports the number of live subscriptions.
func (e *Engine) ActiveSubscriptions() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.subs)
}

func (s *Subscription) loop() {
	ticker := time.NewTicker(s.e.opts.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-ticker.C:
			if _, err := s.poll(true); err != nil {
				return
			}
		}
	}
}

// poll re-executes the query and, when emit is set, diffs against the
// previous result. This is steps (1)-(5) from §3.1: the database assembles
// and serializes the result, the server deserializes it and analyzes it for
// relevant changes.
func (s *Subscription) poll(emit bool) ([]storage.Entry, error) {
	s.e.DBQueries.Add(1)
	entries, err := s.e.db.C(s.q.Collection).FindEntries(s.q)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return entries, nil
	}
	fresh := make(map[string]uint64, len(entries))
	freshOrder := make([]string, 0, len(entries))
	for _, e := range entries {
		fresh[e.Key] = e.Version
		freshOrder = append(freshOrder, e.Key)
	}
	if emit {
		for key := range s.known {
			if _, still := fresh[key]; !still {
				s.push(Event{Type: core.MatchRemove, Key: key, Index: -1})
			}
		}
		prevIdx := map[string]int{}
		for i, k := range s.order {
			prevIdx[k] = i
		}
		for i, e := range entries {
			idx := -1
			if s.q.Ordered() {
				idx = i
			}
			prevVer, was := s.known[e.Key]
			switch {
			case !was:
				s.push(Event{Type: core.MatchAdd, Key: e.Key, Doc: e.Doc, Index: idx})
			case prevVer != e.Version:
				if j, ok := prevIdx[e.Key]; s.q.Ordered() && ok && j != i {
					s.push(Event{Type: core.MatchChangeIndex, Key: e.Key, Doc: e.Doc, Index: idx})
				} else {
					s.push(Event{Type: core.MatchChange, Key: e.Key, Doc: e.Doc, Index: idx})
				}
			}
		}
	}
	s.known = fresh
	s.order = freshOrder
	return entries, nil
}

// push never blocks the poll loop; a lagging consumer loses the oldest
// event.
func (s *Subscription) push(ev Event) {
	select {
	case s.events <- ev:
		return
	default:
	}
	select {
	case <-s.events:
	default:
	}
	select {
	case s.events <- ev:
	default:
	}
}
