package pollanddiff

import (
	"fmt"
	"testing"
	"time"

	"invalidb/internal/core"
	"invalidb/internal/document"
	"invalidb/internal/query"
	"invalidb/internal/storage"
)

func recvEvent(t *testing.T, sub *Subscription, want core.MatchType) Event {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case ev, ok := <-sub.C():
			if !ok {
				t.Fatal("subscription closed")
			}
			if ev.Type == want {
				return ev
			}
		case <-deadline:
			t.Fatalf("timed out waiting for %v", want)
		}
	}
}

func TestPollAndDiffDetectsChanges(t *testing.T) {
	db := storage.Open(storage.Options{})
	e := New(db, Options{Interval: 20 * time.Millisecond})
	defer e.Close()
	_, _ = db.C("c").Insert(document.Document{"_id": "a", "x": 1})

	sub, err := e.Subscribe(query.Spec{Collection: "c", Filter: map[string]any{"x": 1}})
	if err != nil {
		t.Fatal(err)
	}
	// Add.
	_, _ = db.C("c").Insert(document.Document{"_id": "b", "x": 1})
	if ev := recvEvent(t, sub, core.MatchAdd); ev.Key != "b" {
		t.Fatalf("add = %+v", ev)
	}
	// Change.
	_, _ = db.C("c").FindAndModify("b", map[string]any{"$set": map[string]any{"note": "hi"}}, false)
	recvEvent(t, sub, core.MatchChange)
	// Remove via update-out.
	_, _ = db.C("c").FindAndModify("a", map[string]any{"$set": map[string]any{"x": 2}}, false)
	if ev := recvEvent(t, sub, core.MatchRemove); ev.Key != "a" {
		t.Fatalf("remove = %+v", ev)
	}
	// Remove via delete.
	_, _ = db.C("c").Delete("b")
	recvEvent(t, sub, core.MatchRemove)
}

func TestPollAndDiffSortedChangeIndex(t *testing.T) {
	db := storage.Open(storage.Options{})
	e := New(db, Options{Interval: 20 * time.Millisecond})
	defer e.Close()
	for i := 0; i < 4; i++ {
		_, _ = db.C("c").Insert(document.Document{"_id": fmt.Sprint(i), "n": i})
	}
	sub, err := e.Subscribe(query.Spec{Collection: "c", Sort: []query.SortKey{{Path: "n"}}, Limit: 4})
	if err != nil {
		t.Fatal(err)
	}
	_, _ = db.C("c").FindAndModify("0", map[string]any{"$set": map[string]any{"n": 10}}, false)
	ev := recvEvent(t, sub, core.MatchChangeIndex)
	if ev.Key != "0" || ev.Index != 3 {
		t.Fatalf("changeIndex = %+v", ev)
	}
}

// TestPollAndDiffDBOverhead checks the paper's §3.1 arithmetic: N
// subscriptions at interval T produce N/T pull queries per second against
// the database (1 000 subscriptions at 10s = 100 queries/s).
func TestPollAndDiffDBOverhead(t *testing.T) {
	db := storage.Open(storage.Options{})
	e := New(db, Options{Interval: 50 * time.Millisecond})
	defer e.Close()
	const subs = 20
	for i := 0; i < subs; i++ {
		if _, err := e.Subscribe(query.Spec{Collection: "c", Filter: map[string]any{"x": i}}); err != nil {
			t.Fatal(err)
		}
	}
	e.DBQueries.Reset()
	time.Sleep(500 * time.Millisecond)
	rate := e.DBQueries.RatePerSecond()
	// Expected: subs / interval = 20 / 0.05s = 400 queries/s. Allow wide
	// scheduling tolerance.
	if rate < 200 || rate > 600 {
		t.Fatalf("poll overhead = %.0f queries/s, expected ~400", rate)
	}
	if e.ActiveSubscriptions() != subs {
		t.Fatalf("active = %d", e.ActiveSubscriptions())
	}
}

// TestPollAndDiffStalenessBoundedByInterval demonstrates the approach's
// defining weakness: a write is invisible until the next poll.
func TestPollAndDiffStalenessBoundedByInterval(t *testing.T) {
	db := storage.Open(storage.Options{})
	interval := 150 * time.Millisecond
	e := New(db, Options{Interval: interval})
	defer e.Close()
	sub, err := e.Subscribe(query.Spec{Collection: "c", Filter: map[string]any{"x": 1}})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, _ = db.C("c").Insert(document.Document{"_id": "k", "x": 1})
	recvEvent(t, sub, core.MatchAdd)
	lag := time.Since(start)
	if lag > interval+100*time.Millisecond {
		t.Fatalf("staleness %v beyond interval bound", lag)
	}
	if lag < 10*time.Millisecond {
		t.Fatalf("suspiciously instant notification (%v) for a polling engine", lag)
	}
}

func TestPollAndDiffRejectsBadQuery(t *testing.T) {
	e := New(storage.Open(storage.Options{}), Options{})
	defer e.Close()
	if _, err := e.Subscribe(query.Spec{}); err == nil {
		t.Fatal("bad query accepted")
	}
}

func TestPollAndDiffCloseIdempotent(t *testing.T) {
	e := New(storage.Open(storage.Options{}), Options{Interval: 10 * time.Millisecond})
	sub, _ := e.Subscribe(query.Spec{Collection: "c"})
	sub.Close()
	sub.Close()
	e.Close()
	e.Close()
	if _, err := e.Subscribe(query.Spec{Collection: "c"}); err == nil {
		t.Fatal("subscribe after close accepted")
	}
}
