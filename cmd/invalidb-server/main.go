// Command invalidb-server runs an InvaliDB matching cluster as its own
// process, connected to a standalone event-layer broker (see eventlayerd).
// This is the paper's deployment shape: the real-time component is isolated
// from application servers and reachable only through the event layer, so
// taking it down never affects the OLTP path.
//
// Usage:
//
//	eventlayerd -addr 127.0.0.1:7587 &
//	invalidb-server -broker 127.0.0.1:7587 -qp 4 -wp 4
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"invalidb/internal/core"
	"invalidb/internal/eventlayer/tcp"
	"invalidb/internal/obs"
)

func main() {
	var (
		broker   = flag.String("broker", "127.0.0.1:7587", "event-layer broker address")
		qp       = flag.Int("qp", 1, "query partitions (single-process mode)")
		wp       = flag.Int("wp", 1, "write partitions (single-process mode)")
		node     = flag.String("node", "", "node id for a multi-process grid (empty = single-process mode)")
		slots    = flag.Int("slots", 1, "grid mode: local query-partition rows this process hosts")
		maxWP    = flag.Int("max-wp", 0, "grid mode: column capacity for live write-partition resize (0 = wp)")
		capacity = flag.Int("capacity", 0, "per-node match-ops/s budget (0 = unthrottled)")
		ns       = flag.String("namespace", "invalidb", "event-layer topic namespace")
		obsAddr  = flag.String("obs-addr", "", "observability HTTP address for /metrics, /healthz, /debug/pprof (empty disables; unauthenticated — \":port\" binds loopback, use an explicit host like 0.0.0.0:9090 to expose)")
		stats    = flag.Duration("stats", 10*time.Second, "stats print interval (0 disables)")
		wire     = flag.String("wire", core.WireBinary, "wire format for envelopes: binary|json (decode auto-detects either)")
	)
	flag.Parse()
	if err := core.SetWireFormat(*wire); err != nil {
		fatal(err)
	}

	bus, err := tcp.Dial(*broker, tcp.ClientOptions{})
	if err != nil {
		fatal(err)
	}
	cluster, err := core.NewCluster(bus, core.Options{
		Namespace:          *ns,
		QueryPartitions:    *qp,
		WritePartitions:    *wp,
		NodeID:             *node,
		GridSlots:          *slots,
		MaxWritePartitions: *maxWP,
		NodeCapacity:       *capacity,
	})
	if err != nil {
		fatal(err)
	}
	if err := cluster.Start(); err != nil {
		fatal(err)
	}
	if *node != "" {
		fmt.Printf("invalidb-server: grid node %s (%d slots) on broker %s (namespace %s), awaiting partition map\n",
			*node, *slots, *broker, *ns)
	} else {
		fmt.Printf("invalidb-server: %dx%d matching grid on broker %s (namespace %s)\n",
			*qp, *wp, *broker, *ns)
	}

	if *obsAddr != "" {
		o, err := obs.Serve(*obsAddr, obs.Options{
			Registry: cluster.Metrics(),
			// Healthy while no topology task is dead (the supervisor
			// restarts panicking tasks; a dead task exhausted its budget).
			Healthy: func() bool {
				for _, s := range cluster.Stats() {
					if s.Dead {
						return false
					}
				}
				return true
			},
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, format+"\n", args...)
			},
		})
		if err != nil {
			fatal(err)
		}
		defer o.Close()
		fmt.Printf("invalidb-server: observability on http://%s\n", o.Addr())
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	var ticker *time.Ticker
	if *stats > 0 {
		ticker = time.NewTicker(*stats)
		defer ticker.Stop()
	} else {
		ticker = time.NewTicker(time.Hour)
		ticker.Stop()
	}
	for {
		select {
		case <-ticker.C:
			var executed, emitted uint64
			for _, s := range cluster.Stats() {
				if s.Component == "match" {
					executed += s.Executed
					emitted += s.Emitted
				}
			}
			fmt.Printf("invalidb-server: match executed=%d emitted=%d\n", executed, emitted)
		case <-stop:
			cluster.Stop()
			_ = bus.Close()
			return
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "invalidb-server:", err)
	os.Exit(1)
}
