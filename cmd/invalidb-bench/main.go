// Command invalidb-bench regenerates the paper's evaluation: every figure
// and table of §6 (InvaliDB cluster performance) and §7 (Quaestor server
// performance), plus the §3.1 mechanism comparison and the Table 2
// capability matrix.
//
// Absolute numbers are scaled to one machine (matching nodes run on a
// configurable match-operation budget; see DESIGN.md), but the shapes match
// the paper: sustainable query count grows linearly with query partitions,
// sustainable write throughput grows linearly with write partitions, latency
// stays flat across cluster sizes, and the application server adds a small
// constant overhead while capping write throughput.
//
// Usage:
//
//	invalidb-bench -exp fig4
//	invalidb-bench -exp all -capacity 50000 -measure 1s -partitions 1,2,4
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"invalidb/internal/core"
	"invalidb/internal/experiments"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment: fig4|fig5|table3a|table3b|fig6a|fig6b|fig6c|fig6d|baselines|breakdown|table2|spatiotext|backfill|resize|fanout|all")
		capacity   = flag.Int("capacity", 50_000, "matching-node budget in match-ops/s (paper testbed: ~1.6M)")
		measure    = flag.Duration("measure", time.Second, "measurement phase per point (paper: 1m)")
		warmup     = flag.Duration("warmup", 300*time.Millisecond, "warmup phase per point")
		notifs     = flag.Int("notifs", 50, "matching notifications per second (latency samples)")
		partitions = flag.String("partitions", "1,2,4,8", "cluster sizes to sweep")
		verbose    = flag.Bool("v", false, "print per-point progress")
		wire       = flag.String("wire", core.WireBinary, "wire format for envelopes: binary|json (decode auto-detects either)")
		fanClients = flag.Int("fanout-clients", experiments.FanoutClients, "fanout: concurrent mock clients")
		fanQueries = flag.Int("fanout-queries", experiments.FanoutQueries, "fanout: distinct queries the clients share")
		fanRate    = flag.Int("fanout-rate", experiments.FanoutEventRate, "fanout: sustained writes per second")
		fanNoisy   = flag.Bool("fanout-noisy", true, "fanout: add a quota-capped noisy tenant mid-run")
	)
	flag.Parse()
	if err := core.SetWireFormat(*wire); err != nil {
		fatal(err)
	}

	cfg := experiments.Config{
		NodeCapacity:       *capacity,
		Measure:            *measure,
		Warmup:             *warmup,
		TargetNotifsPerSec: *notifs,
	}
	parts, err := parseInts(*partitions)
	if err != nil {
		fatal(err)
	}
	progress := func(string) {}
	if *verbose {
		progress = func(s string) { fmt.Fprintln(os.Stderr, "  "+s) }
	}

	run := func(name string) {
		start := time.Now()
		switch name {
		case "table2":
			fmt.Println(experiments.RenderTable2())
		case "fig4":
			sweeps, err := experiments.Fig4(cfg, parts, nil, progress)
			if err != nil {
				fatal(err)
			}
			fmt.Println(experiments.RenderSweeps(
				"Figure 4 — read scalability: sustainable real-time queries by query partitions (1 000 ops/s fixed)",
				"QP", "concurrent queries", sweeps))
		case "fig5":
			sweeps, err := experiments.Fig5(cfg, parts, nil, progress)
			if err != nil {
				fatal(err)
			}
			fmt.Println(experiments.RenderSweeps(
				fmt.Sprintf("Figure 5 — write scalability: sustainable write throughput by write partitions (%d queries fixed)", experiments.FixedQueries),
				"WP", "ops/s", sweeps))
		case "table3a":
			pts, err := experiments.Table3a(cfg, parts)
			if err != nil {
				fatal(err)
			}
			fmt.Println(experiments.RenderTable3(
				"Table 3a — read-heavy latency at ~80% capacity (1 000 ops/s fixed)", pts, true))
		case "table3b":
			pts, err := experiments.Table3b(cfg, parts)
			if err != nil {
				fatal(err)
			}
			fmt.Println(experiments.RenderTable3(
				fmt.Sprintf("Table 3b — write-heavy latency at ~66%% capacity (%d queries fixed)", experiments.FixedQueries), pts, false))
		case "fig6a":
			qp := parts[len(parts)-1]
			levels := fig6aLevels(cfg, qp)
			pairs, err := experiments.Fig6a(cfg, qp, levels, progress)
			if err != nil {
				fatal(err)
			}
			fmt.Println(experiments.RenderFig6(
				fmt.Sprintf("Figure 6a — Quaestor vs standalone InvaliDB under query load (%d QP, 1 WP, 1 000 ops/s)", qp),
				"queries", pairs))
		case "fig6b":
			wp := parts[len(parts)-1]
			levels := fig6bLevels(cfg, wp)
			pairs, err := experiments.Fig6b(cfg, wp, levels, progress)
			if err != nil {
				fatal(err)
			}
			fmt.Println(experiments.RenderFig6(
				fmt.Sprintf("Figure 6b — Quaestor vs standalone InvaliDB under write load (1 QP, %d WP, %d queries)", wp, experiments.FixedQueries),
				"ops/s", pairs))
		case "fig6c":
			qp := parts[len(parts)-1]
			pair, err := experiments.Fig6c(cfg, qp)
			if err != nil {
				fatal(err)
			}
			fmt.Println(experiments.RenderHistogram(
				"Figure 6c — latency distribution, read-heavy snapshot", pair))
		case "fig6d":
			wp := parts[len(parts)-1]
			pair, err := experiments.Fig6d(cfg, wp)
			if err != nil {
				fatal(err)
			}
			fmt.Println(experiments.RenderHistogram(
				"Figure 6d — latency distribution, write-heavy snapshot", pair))
		case "spatiotext":
			// The generalized predicate index under a mixed equality/geo/text
			// population (not a paper figure; see DESIGN.md §11). Unthrottled
			// matching nodes: the numbers are real CPU cost, not the budget
			// simulation, so this run takes a few minutes.
			results, err := experiments.SpatioTextComparison(cfg,
				experiments.SpatioTextQueries, experiments.SpatioTextBaseRate,
				experiments.SpatioTextHighRate, progress)
			if err != nil {
				fatal(err)
			}
			fmt.Println(experiments.RenderSpatioText(results))
		case "backfill":
			// Subscription admission throughput under sustained writes:
			// one-shot scan-and-race bootstrap vs watermark-certified chunked
			// backfill (not a paper figure; see DESIGN.md §12). Unthrottled
			// matching nodes — real CPU and protocol cost.
			results, err := experiments.BackfillComparison(cfg,
				experiments.BackfillDocs, experiments.BackfillGroups,
				experiments.BackfillWriteRate, experiments.BackfillSubscribers, progress)
			if err != nil {
				fatal(err)
			}
			fmt.Println(experiments.RenderBackfill(results))
		case "resize":
			// Live grid resize on a multi-process deployment: notification
			// continuity and per-phase latency while a coordinator grows the
			// query-partition axis under sustained writes (not a paper
			// figure; see DESIGN.md §13).
			progress(fmt.Sprintf("resize: 2x2 -> 3x2 under %d writes/s", experiments.ResizeWriteRate))
			p, err := experiments.RunResizePoint(cfg, experiments.ResizeWriteRate)
			if err != nil {
				fatal(err)
			}
			fmt.Println(experiments.RenderResize(p))
		case "fanout":
			// Shared-subscription edge fan-out: a mock-client swarm over an
			// in-process listener proves delivery cost scales with distinct
			// queries, not clients (not a paper figure; see DESIGN.md §14).
			p, err := experiments.RunFanoutPoint(cfg, experiments.FanoutConfig{
				Clients:   *fanClients,
				Queries:   *fanQueries,
				EventRate: *fanRate,
				Noisy:     *fanNoisy,
			}, progress)
			if err != nil {
				fatal(err)
			}
			fmt.Println(experiments.RenderFanout(p))
		case "baselines":
			results, err := experiments.Baselines(cfg, progress)
			if err != nil {
				fatal(err)
			}
			fmt.Println(experiments.RenderBaselines(results))
		case "breakdown":
			// Moderate load on the largest swept cluster so the stages are
			// measured away from saturation.
			size := parts[len(parts)-1]
			c := cfg.Defaults()
			inv, err := experiments.RunClusterPoint(cfg, size, size, experiments.FixedQueries, c.NodeCapacity/(2*experiments.FixedQueries)*size)
			if err != nil {
				fatal(err)
			}
			fmt.Println(experiments.RenderBreakdown(
				"Stage breakdown — standalone InvaliDB (ingest / grid / bus)", inv))
			qst, err := experiments.RunQuaestorPoint(cfg, size, size, experiments.FixedQueries, c.NodeCapacity/(2*experiments.FixedQueries)*size)
			if err != nil {
				fatal(err)
			}
			fmt.Println(experiments.RenderBreakdown(
				"Stage breakdown — through Quaestor appserver (ingest / grid / bus / appserver)", qst))
		default:
			fatal(fmt.Errorf("unknown experiment %q", name))
		}
		fmt.Fprintf(os.Stderr, "[%s finished in %v]\n\n", name, time.Since(start).Round(time.Second))
	}

	if *exp == "all" {
		for _, name := range []string{"table2", "fig4", "fig5", "table3a", "table3b", "fig6a", "fig6b", "fig6c", "fig6d", "baselines", "breakdown"} {
			run(name)
		}
		return
	}
	run(*exp)
}

// fig6aLevels builds the query-load axis: fractions of the cluster's
// capacity, like the paper's 500..32k sweep.
func fig6aLevels(cfg experiments.Config, qp int) []int {
	cfg = cfg.Defaults()
	max := qp * cfg.NodeCapacity / experiments.BaseWriteRate
	var levels []int
	for _, f := range []float64{0.25, 0.5, 0.75, 0.9} {
		levels = append(levels, int(f*float64(max)))
	}
	return levels
}

func fig6bLevels(cfg experiments.Config, wp int) []int {
	cfg = cfg.Defaults()
	max := wp * cfg.NodeCapacity / experiments.FixedQueries
	var levels []int
	for _, f := range []float64{0.25, 0.5, 0.75, 0.9} {
		levels = append(levels, int(f*float64(max)))
	}
	return levels
}

func parseInts(csv string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(csv, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("invalid partition count %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no partition counts")
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "invalidb-bench:", err)
	os.Exit(1)
}
