// Command invalidb-vet runs InvaliDB's custom static-analysis suite — the
// multichecker over internal/analysis — across the packages named on the
// command line (default ./...). It exits non-zero when any invariant is
// violated, so `make lint` and CI gate on it.
//
// Run it from the module root: package loading resolves module-local
// imports through the go command in the working directory.
//
// Usage:
//
//	invalidb-vet [-list] [packages...]
package main

import (
	"flag"
	"fmt"
	"os"

	"invalidb/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers in the suite and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: invalidb-vet [-list] [packages...]\n\n")
		fmt.Fprintf(os.Stderr, "Runs InvaliDB's invariant lint suite (default pattern ./...).\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.Suite {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := analysis.Run(patterns, analysis.Suite)
	if err != nil {
		fmt.Fprintf(os.Stderr, "invalidb-vet: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "invalidb-vet: %d invariant violation(s)\n", len(diags))
		os.Exit(1)
	}
}
