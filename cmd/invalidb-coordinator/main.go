// Command invalidb-coordinator runs the control plane of a multi-process
// InvaliDB matching grid (DESIGN.md §13): it assigns query-partition rows
// to invalidb-server processes and publishes the assignment as partition-map
// epochs on the retained control topic. Run exactly one per namespace.
//
// Usage:
//
//	eventlayerd -addr 127.0.0.1:7587 &
//	invalidb-server -broker 127.0.0.1:7587 -node a -slots 2 &
//	invalidb-server -broker 127.0.0.1:7587 -node b -slots 2 &
//	invalidb-coordinator -broker 127.0.0.1:7587 -qp 2 -wp 2
//
// A live resize is requested with the one-shot -resize flag, which
// publishes a ResizeRequest to the running coordinator and exits:
//
//	invalidb-coordinator -broker 127.0.0.1:7587 -resize qp
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"invalidb/internal/coordinator"
	"invalidb/internal/core"
	"invalidb/internal/eventlayer/tcp"
)

func main() {
	var (
		broker = flag.String("broker", "127.0.0.1:7587", "event-layer broker address")
		ns     = flag.String("namespace", "invalidb", "event-layer topic namespace")
		qp     = flag.Int("qp", 1, "initial query partitions")
		wp     = flag.Int("wp", 1, "initial write partitions")
		resize = flag.String("resize", "", "one-shot: publish a resize request (qp|wp) to the running coordinator and exit")
		stats  = flag.Duration("stats", 10*time.Second, "status print interval (0 disables)")
		wire   = flag.String("wire", core.WireBinary, "wire format for envelopes: binary|json (decode auto-detects either)")
	)
	flag.Parse()
	if err := core.SetWireFormat(*wire); err != nil {
		fatal(err)
	}
	bus, err := tcp.Dial(*broker, tcp.ClientOptions{})
	if err != nil {
		fatal(err)
	}
	defer bus.Close()

	if *resize != "" {
		if *resize != core.ResizeAxisQP && *resize != core.ResizeAxisWP {
			fatal(fmt.Errorf("-resize must be qp or wp, got %q", *resize))
		}
		env := &core.Envelope{Kind: core.KindResize, Resize: &core.ResizeRequest{Axis: *resize}}
		data, err := env.Encode()
		if err != nil {
			fatal(err)
		}
		if err := bus.Publish(core.NewTopics(*ns).Coord(), data); err != nil {
			fatal(err)
		}
		// Give the client's write loop a moment to flush before closing.
		time.Sleep(100 * time.Millisecond)
		fmt.Printf("invalidb-coordinator: resize %s requested on namespace %s\n", *resize, *ns)
		return
	}

	coord, err := coordinator.New(bus, coordinator.Options{
		Namespace:       *ns,
		QueryPartitions: *qp,
		WritePartitions: *wp,
		Logf: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	})
	if err != nil {
		fatal(err)
	}
	if err := coord.Start(); err != nil {
		fatal(err)
	}
	fmt.Printf("invalidb-coordinator: coordinating %dx%d grid on broker %s (namespace %s)\n",
		*qp, *wp, *broker, *ns)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	var ticker *time.Ticker
	if *stats > 0 {
		ticker = time.NewTicker(*stats)
		defer ticker.Stop()
	} else {
		ticker = time.NewTicker(time.Hour)
		ticker.Stop()
	}
	for {
		select {
		case <-ticker.C:
			m := coord.CurrentMap()
			if m == nil {
				fmt.Printf("invalidb-coordinator: awaiting capacity (nodes: %v)\n", coord.Nodes())
				continue
			}
			fmt.Printf("invalidb-coordinator: epoch %d %dx%d converged=%v nodes=%v\n",
				m.Epoch, m.QueryPartitions, m.WritePartitions, coord.Converged(), coord.Nodes())
		case <-stop:
			coord.Stop()
			return
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "invalidb-coordinator:", err)
	os.Exit(1)
}
