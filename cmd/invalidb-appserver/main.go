// Command invalidb-appserver runs an application server with its client
// gateway: the middle tier of the paper's architecture (Figure 1). It owns
// a document database (optionally journaled for durability), connects to
// the event-layer broker, and accepts end-user connections on the gateway
// port using the newline-delimited JSON protocol of internal/gateway.
//
// A full multi-process deployment:
//
//	eventlayerd        -addr 127.0.0.1:7587 &
//	invalidb-server    -broker 127.0.0.1:7587 -qp 4 -wp 4 &
//	invalidb-appserver -broker 127.0.0.1:7587 -listen 127.0.0.1:7588 -journal /tmp/app.wal
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"invalidb/internal/appserver"
	"invalidb/internal/core"
	"invalidb/internal/eventlayer/tcp"
	"invalidb/internal/gateway"
	"invalidb/internal/obs"
	"invalidb/internal/storage"
)

func main() {
	var (
		broker  = flag.String("broker", "127.0.0.1:7587", "event-layer broker address")
		listen  = flag.String("listen", "127.0.0.1:7588", "gateway listen address for end-user clients")
		tenant  = flag.String("tenant", "default", "tenant id within the multi-tenant cluster")
		ns      = flag.String("namespace", "invalidb", "event-layer topic namespace")
		journal = flag.String("journal", "", "write-ahead log path (empty = volatile database)")
		obsAddr = flag.String("obs-addr", "", "observability HTTP address for /metrics, /healthz, /debug/pprof (empty disables; unauthenticated — \":port\" binds loopback, use an explicit host like 0.0.0.0:9090 to expose)")
		stats   = flag.Duration("stats", 10*time.Second, "stats print interval (0 disables)")
		wire    = flag.String("wire", core.WireBinary, "wire format for envelopes: binary|json (decode auto-detects either)")

		outBudget = flag.Int("client-out-budget", 64<<10, "per-client outbound queue budget in bytes before events are shed")
		maxConns  = flag.Int("max-conns-per-tenant", 0, "cap on concurrent connections per tenant (0 = unlimited)")
		maxSubs   = flag.Int("max-subs-per-tenant", 0, "cap on concurrent subscriptions per tenant (0 = unlimited)")
		connRate  = flag.Float64("conn-rate-per-tenant", 0, "new connections per second per tenant (0 = unlimited)")
		subRate   = flag.Float64("sub-rate-per-tenant", 0, "new subscriptions per second per tenant (0 = unlimited)")
	)
	flag.Parse()
	if err := core.SetWireFormat(*wire); err != nil {
		fatal(err)
	}

	db := storage.Open(storage.Options{})
	if *journal != "" {
		if _, err := os.Stat(*journal); err == nil {
			applied, err := db.Recover(*journal)
			if err != nil {
				fatal(fmt.Errorf("recover %s: %w", *journal, err))
			}
			fmt.Printf("invalidb-appserver: recovered %d journal records\n", applied)
		}
		j, err := storage.OpenJournal(*journal, storage.JournalOptions{})
		if err != nil {
			fatal(err)
		}
		defer j.Close()
		db.AttachJournal(j)
	}

	bus, err := tcp.Dial(*broker, tcp.ClientOptions{})
	if err != nil {
		fatal(err)
	}
	srv, err := appserver.New(db, bus, appserver.Options{Tenant: *tenant, Namespace: *ns})
	if err != nil {
		fatal(err)
	}
	gwOpts := gateway.Options{
		// Folding the gateway into the appserver's registry puts its
		// fan-out counters on the same -obs-addr endpoint.
		Metrics:   srv.Metrics(),
		OutBudget: *outBudget,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}
	if *maxConns > 0 || *maxSubs > 0 || *connRate > 0 || *subRate > 0 {
		q := gateway.Quota{MaxConns: *maxConns, MaxSubs: *maxSubs, ConnRate: *connRate, SubRate: *subRate}
		gwOpts.Quota = func(string) gateway.Quota { return q }
	}
	gw, err := gateway.ServeOptions(srv, *listen, gwOpts)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("invalidb-appserver: tenant %q on broker %s, gateway %s\n", *tenant, *broker, gw.Addr())

	if *obsAddr != "" {
		reg := srv.Metrics()
		db.RegisterMetrics(reg)
		o, err := obs.Serve(*obsAddr, obs.Options{
			Registry: reg,
			// Healthy while cluster heartbeats are arriving; during an
			// outage the appserver still serves reads but real-time
			// queries are frozen, which a load balancer should see.
			Healthy: srv.Connected,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, format+"\n", args...)
			},
		})
		if err != nil {
			fatal(err)
		}
		defer o.Close()
		fmt.Printf("invalidb-appserver: observability on http://%s\n", o.Addr())
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	var tick <-chan time.Time
	if *stats > 0 {
		t := time.NewTicker(*stats)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-tick:
			fmt.Printf("invalidb-appserver: clients=%d subs=%d queries=%d renewals=%d\n",
				gw.Clients(), gw.Subscriptions(), gw.DistinctQueries(), srv.Renewals())
		case <-stop:
			_ = gw.Close()
			_ = srv.Close()
			_ = bus.Close()
			return
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "invalidb-appserver:", err)
	os.Exit(1)
}
