// Command eventlayerd runs a standalone event-layer broker — the Redis
// stand-in of a multi-process InvaliDB deployment (paper Figure 1).
// Application servers and the InvaliDB cluster connect to it with
// invalidb.DialBroker / the internal tcp client.
//
// Usage:
//
//	eventlayerd -addr 127.0.0.1:7587
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"invalidb/internal/eventlayer/tcp"
	"invalidb/internal/metrics"
	"invalidb/internal/obs"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:7587", "listen address")
		obsAddr = flag.String("obs-addr", "", "observability HTTP address for /metrics, /healthz, /debug/pprof (empty disables; unauthenticated — \":port\" binds loopback, use an explicit host like 0.0.0.0:9090 to expose)")
		stats   = flag.Duration("stats", 10*time.Second, "stats print interval (0 disables)")
	)
	flag.Parse()

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	srv, err := tcp.Serve(*addr, tcp.ServerOptions{Logf: logf})
	if err != nil {
		fmt.Fprintln(os.Stderr, "eventlayerd:", err)
		os.Exit(1)
	}
	fmt.Printf("eventlayerd: listening on %s\n", srv.Addr())

	if *obsAddr != "" {
		reg := metrics.NewRegistry()
		srv.RegisterMetrics(reg)
		o, err := obs.Serve(*obsAddr, obs.Options{Registry: reg, Logf: logf})
		if err != nil {
			fmt.Fprintln(os.Stderr, "eventlayerd:", err)
			os.Exit(1)
		}
		defer o.Close()
		fmt.Printf("eventlayerd: observability on http://%s\n", o.Addr())
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	if *stats > 0 {
		ticker := time.NewTicker(*stats)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				p, d, drop := srv.Stats()
				fmt.Printf("eventlayerd: published=%d delivered=%d dropped=%d\n", p, d, drop)
			case <-stop:
				_ = srv.Close()
				return
			}
		}
	}
	<-stop
	_ = srv.Close()
}
