module invalidb

go 1.22
