// Package invalidb is a from-scratch Go implementation of InvaliDB
// (Wingerath, Gessert, Ritter: "Scalable Push-Based Real-Time Queries on Top
// of Pull-Based Databases", PVLDB 13(12)/ICDE 2020): a real-time database
// layered on top of a pull-based document store. Clients subscribe to
// ordinary collection queries — sorted filter queries with limit and offset,
// in the MongoDB query language — and receive the initial result followed by
// a push-based stream of incremental change events (add, change,
// changeIndex, remove).
//
// The heart of the system is the InvaliDB cluster's two-dimensional workload
// partitioning: queries are hash-partitioned across query partitions and
// writes are hash-partitioned across write partitions, so each matching node
// handles a subset of queries against a fraction of the write stream. Adding
// query partitions scales the number of sustainable concurrent queries;
// adding write partitions scales sustainable write throughput — both
// linearly (paper §6).
//
// The package wires together the subsystems under internal/: a sharded
// in-memory document database (standing in for MongoDB), a Redis-like
// pub/sub event layer (in-process or TCP), a Storm-like stream-processing
// runtime, the matching and sorting stages, and the application-server
// client. The quickest start:
//
//	dep, _ := invalidb.Open(invalidb.Config{QueryPartitions: 2, WritePartitions: 2})
//	defer dep.Close()
//	_ = dep.Server.Insert("articles", invalidb.Document{"_id": "1", "year": 2020})
//	sub, _ := dep.Server.Subscribe(invalidb.Spec{
//		Collection: "articles",
//		Filter:     map[string]any{"year": map[string]any{"$gte": 2018}},
//	})
//	for ev := range sub.C() { ... }
package invalidb

import (
	"fmt"
	"time"

	"invalidb/internal/appserver"
	"invalidb/internal/core"
	"invalidb/internal/document"
	"invalidb/internal/eventlayer"
	"invalidb/internal/eventlayer/tcp"
	"invalidb/internal/gateway"
	"invalidb/internal/query"
	"invalidb/internal/storage"
)

// Document is a JSON-style record keyed by "_id".
type Document = document.Document

// AfterImage is the fully specified representation of a written entity.
type AfterImage = document.AfterImage

// Spec describes a query: filter (MongoDB syntax), sort keys, limit, offset
// and projection.
type Spec = query.Spec

// SortKey is one ORDER BY component.
type SortKey = query.SortKey

// Query is a compiled, executable query.
type Query = query.Query

// CompileQuery validates and compiles a query specification.
func CompileQuery(spec Spec) (*Query, error) { return query.Compile(spec) }

// Event is one real-time subscription update.
type Event = appserver.Event

// EventType classifies subscription events.
type EventType = appserver.EventType

// Event types delivered on Subscription.C.
const (
	EventInitial     = appserver.EventInitial
	EventAdd         = appserver.EventAdd
	EventChange      = appserver.EventChange
	EventChangeIndex = appserver.EventChangeIndex
	EventRemove      = appserver.EventRemove
	EventError       = appserver.EventError
	// EventDisconnected and EventReconnected bracket a cluster heartbeat
	// outage: subscriptions survive it and are re-subscribed automatically.
	EventDisconnected = appserver.EventDisconnected
	EventReconnected  = appserver.EventReconnected
)

// Subscription is an active real-time query subscription.
type Subscription = appserver.Subscription

// Server is an application server: the broker between end users, the
// database and the InvaliDB cluster.
type Server = appserver.Server

// ServerOptions configures an application server.
type ServerOptions = appserver.Options

// Cluster is a running InvaliDB matching cluster.
type Cluster = core.Cluster

// ClusterOptions configures a cluster (partition counts, node capacity,
// retention, heartbeats...).
type ClusterOptions = core.Options

// DB is the pull-based document database substrate.
type DB = storage.DB

// DBOptions configures the database.
type DBOptions = storage.Options

// Bus is the event layer: the asynchronous broker connecting application
// servers and the cluster.
type Bus = eventlayer.Bus

// OpenDB creates an empty in-memory sharded document database.
func OpenDB(opts DBOptions) *DB { return storage.Open(opts) }

// NewMemBus creates the in-process event layer.
func NewMemBus() Bus { return eventlayer.NewMemBus(eventlayer.MemBusOptions{}) }

// ServeBroker starts a standalone TCP event-layer broker (the multi-process
// deployment option), returning its address via Addr.
func ServeBroker(addr string) (*tcp.Server, error) {
	return tcp.Serve(addr, tcp.ServerOptions{})
}

// DialBroker connects to a TCP event-layer broker.
func DialBroker(addr string) (Bus, error) {
	return tcp.Dial(addr, tcp.ClientOptions{})
}

// NewCluster assembles an InvaliDB cluster over an event layer. Call Start
// on the result.
func NewCluster(bus Bus, opts ClusterOptions) (*Cluster, error) {
	return core.NewCluster(bus, opts)
}

// NewServer creates an application server over a database and event layer.
func NewServer(db *DB, bus Bus, opts ServerOptions) (*Server, error) {
	return appserver.New(db, bus, opts)
}

// Gateway is a client-facing proxy serving end-user devices over TCP
// (newline-delimited JSON frames).
type Gateway = gateway.Server

// GatewayClient is the device-side connection to a Gateway.
type GatewayClient = gateway.Client

// GatewayOptions tunes a gateway: metrics registry, per-client outbound
// byte budget, fan-out sharding, and per-tenant quotas (DESIGN.md §14).
type GatewayOptions = gateway.Options

// GatewayQuota bounds one tenant's connections and subscriptions.
type GatewayQuota = gateway.Quota

// ServeGateway exposes an application server to end-user clients (paper
// Figure 1's end-user path).
func ServeGateway(srv *Server, addr string) (*Gateway, error) {
	return gateway.Serve(srv, addr)
}

// ServeGatewayOptions is ServeGateway with explicit options.
func ServeGatewayOptions(srv *Server, addr string, opts GatewayOptions) (*Gateway, error) {
	return gateway.ServeOptions(srv, addr, opts)
}

// DialGateway connects an end-user client to a gateway.
func DialGateway(addr string) (*GatewayClient, error) {
	return gateway.DialClient(addr)
}

// Journal is an append-only write-ahead log giving the database durability
// across restarts.
type Journal = storage.Journal

// OpenJournal opens (creating if needed) a journal file; attach it with
// DB.AttachJournal and replay it with DB.Recover.
func OpenJournal(path string) (*Journal, error) {
	return storage.OpenJournal(path, storage.JournalOptions{})
}

// Config is the one-call configuration for a single-process deployment.
type Config struct {
	// QueryPartitions and WritePartitions shape the matching grid.
	QueryPartitions int
	WritePartitions int
	// NodeCapacity throttles each matching node (match-ops/second);
	// zero disables throttling.
	NodeCapacity int
	// Tenant names the application (default "default").
	Tenant string
	// Slack is the sorted-query slack (default 3); MaxSlack caps its
	// adaptive growth across renewals (default 64).
	Slack    int
	MaxSlack int
	// RenewalMinInterval is the poll frequency rate limit for query
	// renewals (default 100ms).
	RenewalMinInterval time.Duration
	// HeartbeatInterval, RetentionTime and TTL tune liveness; zero values
	// select production-like defaults.
	HeartbeatInterval time.Duration
	RetentionTime     time.Duration
	TTL               time.Duration
}

// Deployment bundles a complete single-process InvaliDB stack: database,
// event layer, cluster and one application server.
type Deployment struct {
	Bus     Bus
	DB      *DB
	Cluster *Cluster
	Server  *Server
}

// Open starts a complete in-process deployment.
func Open(cfg Config) (*Deployment, error) {
	bus := NewMemBus()
	cluster, err := NewCluster(bus, ClusterOptions{
		QueryPartitions:   cfg.QueryPartitions,
		WritePartitions:   cfg.WritePartitions,
		NodeCapacity:      cfg.NodeCapacity,
		HeartbeatInterval: cfg.HeartbeatInterval,
		RetentionTime:     cfg.RetentionTime,
	})
	if err != nil {
		_ = bus.Close()
		return nil, fmt.Errorf("invalidb: %w", err)
	}
	if err := cluster.Start(); err != nil {
		_ = bus.Close()
		return nil, fmt.Errorf("invalidb: %w", err)
	}
	db := OpenDB(DBOptions{})
	srv, err := NewServer(db, bus, ServerOptions{
		Tenant:             cfg.Tenant,
		Slack:              cfg.Slack,
		MaxSlack:           cfg.MaxSlack,
		RenewalMinInterval: cfg.RenewalMinInterval,
		TTL:                cfg.TTL,
	})
	if err != nil {
		cluster.Stop()
		_ = bus.Close()
		return nil, fmt.Errorf("invalidb: %w", err)
	}
	return &Deployment{Bus: bus, DB: db, Cluster: cluster, Server: srv}, nil
}

// Close tears the deployment down: server first, then cluster, then bus.
func (d *Deployment) Close() {
	if d.Server != nil {
		_ = d.Server.Close()
	}
	if d.Cluster != nil {
		d.Cluster.Stop()
	}
	if d.Bus != nil {
		_ = d.Bus.Close()
	}
}
