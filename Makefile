GO ?= go

.PHONY: all build vet staticcheck test race bench-smoke chaos check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# staticcheck runs when installed; environments without it fall back to vet.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./... ; \
	else \
		echo "staticcheck not installed; skipping (go vet already ran)" ; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Fault-injection suite: the full stack under event-layer drops, delays,
# duplicates, reordering and partitions, plus an injected matching-node
# panic — all with tuple acking enabled, under the race detector.
chaos:
	$(GO) test -race ./internal/chaostest/ -count=1

# Allocation smoke: the routing hot path must stay at 0 allocs/op.
bench-smoke:
	$(GO) test . -run xxx -bench 'BenchmarkFanOutRouting' -benchmem -benchtime=100000x

check: vet staticcheck build race bench-smoke
