GO ?= go

.PHONY: all build vet staticcheck lint test race bench-smoke fuzz-smoke chaos obs-smoke resize-smoke fanout-smoke check

all: check lint

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# staticcheck runs when installed. Local environments without it fall back
# to vet with a notice; CI (where the workflow installs it) must never skip.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./... ; \
	elif [ -n "$$CI" ]; then \
		echo "staticcheck is required in CI but is not installed" ; \
		exit 1 ; \
	else \
		echo "staticcheck not installed; skipping (go vet already ran)" ; \
	fi

# InvaliDB's own analyzer suite (internal/analysis): hot-path allocation,
# lock-discipline, metric-key, pooled-lifecycle, coarse-clock, wire-kind,
# epoch-capture, goroutine-leak and directive checks over the whole module,
# interprocedurally (DESIGN.md §9). Its own CI job (and deliberately not
# part of `check`, so the two run in parallel there); `make all` runs both.
lint:
	$(GO) run ./cmd/invalidb-vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Fault-injection suite: the full stack under event-layer drops, delays,
# duplicates, reordering and partitions, plus an injected matching-node
# panic — all with tuple acking enabled, under the race detector.
chaos:
	$(GO) test -race ./internal/chaostest/ -count=1

# Allocation smoke: the routing hot path must stay at 0 allocs/op, and the
# wire codec benchmarks must keep compiling and running (EXPERIMENTS.md
# records representative numbers; TestEnvelopeWireEncodeNoAllocs pins the
# 0 allocs/op claim in the regular test suite).
bench-smoke:
	$(GO) test . -run xxx -bench 'BenchmarkFanOutRouting' -benchmem -benchtime=100000x
	$(GO) test ./internal/core -run xxx -bench 'BenchmarkEnvelopeWire' -benchmem -benchtime=1x
	$(GO) test ./internal/core -run xxx -bench 'BenchmarkCandidateProbe' -benchmem -benchtime=1000x
	$(GO) test ./internal/gateway -run TestGatewayFanOutPerDeliveryAllocs -bench 'BenchmarkGatewayFanOut' -benchmem -benchtime=1000x -count=1

# Fuzz smoke: run each native fuzz target briefly past its seed corpus.
fuzz-smoke:
	$(GO) test ./internal/query -run '^$$' -fuzz FuzzMatch -fuzztime 2000x
	$(GO) test ./internal/storage -run '^$$' -fuzz FuzzApplyUpdate -fuzztime 2000x
	$(GO) test ./internal/core -run '^$$' -fuzz FuzzEnvelopeWire -fuzztime 2000x

# Observability smoke: boot a broker + cluster with -obs-addr and assert
# /metrics and /healthz answer with real content.
obs-smoke:
	@set -e; \
	tmp=$$(mktemp -d); trap 'kill $$broker $$server 2>/dev/null; rm -rf $$tmp' EXIT; \
	$(GO) build -o $$tmp ./cmd/eventlayerd ./cmd/invalidb-server; \
	$$tmp/eventlayerd -addr 127.0.0.1:7597 -stats 0 & broker=$$!; \
	sleep 0.3; \
	$$tmp/invalidb-server -broker 127.0.0.1:7597 -qp 2 -wp 2 -obs-addr 127.0.0.1:7599 -stats 0 & server=$$!; \
	sleep 0.5; \
	metrics=$$(curl -sf http://127.0.0.1:7599/metrics); \
	echo "$$metrics" | grep -q '"cluster.queries"' || { echo "obs-smoke: /metrics missing cluster gauges"; exit 1; }; \
	curl -sf http://127.0.0.1:7599/healthz | grep -q ok || { echo "obs-smoke: /healthz not ok"; exit 1; }; \
	curl -sf 'http://127.0.0.1:7599/metrics?format=text' | grep -q 'topology\.' || { echo "obs-smoke: text metrics missing topology stats"; exit 1; }; \
	echo "obs-smoke: ok"

# Resize smoke: boot the real multi-process deployment (broker + two grid
# server processes + coordinator), perform a live QP resize under write load
# via the one-shot CLI, and assert zero dropped or duplicated notifications
# (DESIGN.md §13). Runs under the race detector: the resize path crosses
# every concurrency boundary in the system. Gated behind RESIZE_SMOKE so
# `go test ./...` stays fast.
resize-smoke:
	RESIZE_SMOKE=1 $(GO) test -race ./internal/smoke -run TestResizeSmoke -count=1 -v

# Fan-out smoke: a scaled-down run of the `-exp fanout` swarm under the race
# detector — asserts the dedup ratio (one upstream subscription per distinct
# query), zero lost terminal events, and a bounded noisy tenant
# (DESIGN.md §14). Gated behind FANOUT_SMOKE so `go test ./...` stays fast.
fanout-smoke:
	FANOUT_SMOKE=1 $(GO) test -race ./internal/smoke -run TestFanoutSmoke -count=1 -v

check: vet staticcheck build race bench-smoke
