GO ?= go

.PHONY: all build vet test race bench-smoke check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Allocation smoke: the routing hot path must stay at 0 allocs/op.
bench-smoke:
	$(GO) test . -run xxx -bench 'BenchmarkFanOutRouting' -benchmem -benchtime=100000x

check: vet build race bench-smoke
