package invalidb

import (
	"testing"
	"time"
)

func TestOpenQuickstart(t *testing.T) {
	dep, err := Open(Config{QueryPartitions: 2, WritePartitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()

	if err := dep.Server.Insert("articles", Document{"_id": "1", "title": "A", "year": 2020}); err != nil {
		t.Fatal(err)
	}
	sub, err := dep.Server.Subscribe(Spec{
		Collection: "articles",
		Filter:     map[string]any{"year": map[string]any{"$gte": 2018}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ev := nextEvent(t, sub.C())
	if ev.Type != EventInitial || len(ev.Docs) != 1 {
		t.Fatalf("initial event = %+v", ev)
	}
	if err := dep.Server.Insert("articles", Document{"_id": "2", "title": "B", "year": 2019}); err != nil {
		t.Fatal(err)
	}
	ev = nextEvent(t, sub.C())
	if ev.Type != EventAdd || ev.Key != "2" {
		t.Fatalf("add event = %+v", ev)
	}
	if got, err := dep.Server.Query(Spec{Collection: "articles"}); err != nil || len(got) != 2 {
		t.Fatalf("pull-based query = %v, %v", got, err)
	}
}

func TestOpenSortedQuery(t *testing.T) {
	dep, err := Open(Config{Slack: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	for i, name := range []string{"carol", "alice", "bob"} {
		if err := dep.Server.Insert("players", Document{"_id": name, "score": (i + 1) * 10}); err != nil {
			t.Fatal(err)
		}
	}
	sub, err := dep.Server.Subscribe(Spec{
		Collection: "players",
		Sort:       []SortKey{{Path: "score", Desc: true}},
		Limit:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ev := nextEvent(t, sub.C())
	if len(ev.Docs) != 2 {
		t.Fatalf("initial = %v", ev.Docs)
	}
	if id, _ := ev.Docs[0].ID(); id != "bob" {
		t.Fatalf("leader = %s, want bob", id)
	}
}

func TestCompileQuery(t *testing.T) {
	q, err := CompileQuery(Spec{Collection: "c", Filter: map[string]any{"x": 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !q.Match(Document{"x": int64(1)}) {
		t.Fatal("compiled query does not match")
	}
	if _, err := CompileQuery(Spec{}); err == nil {
		t.Fatal("empty spec accepted")
	}
}

func TestBrokerHelpers(t *testing.T) {
	srv, err := ServeBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	bus, err := DialBroker(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer bus.Close()
	sub, err := bus.Subscribe("t")
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	if err := bus.Publish("t", []byte("x")); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-sub.C():
		if string(m.Payload) != "x" {
			t.Fatalf("payload = %q", m.Payload)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("broker round trip timed out")
	}
}

func nextEvent(t *testing.T, c <-chan Event) Event {
	t.Helper()
	select {
	case ev, ok := <-c:
		if !ok {
			t.Fatal("event channel closed")
		}
		return ev
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for event")
		return Event{}
	}
}
