// Benchmarks regenerating the paper's evaluation, one per table and figure
// (see EXPERIMENTS.md for the mapping and DESIGN.md for the scaling model).
// Each figure benchmark measures a representative operating point of the
// corresponding experiment and reports the paper's metrics via
// b.ReportMetric; the full sweeps — the complete rows/series of every figure
// — are produced by `go run ./cmd/invalidb-bench -exp <id>`.
//
// The second half are micro-benchmarks of the substrates (query matching,
// sorting, storage, event layer, topology, end-to-end notification path).
package invalidb

import (
	"fmt"
	"testing"
	"time"

	"invalidb/internal/core"
	"invalidb/internal/document"
	"invalidb/internal/eventlayer"
	"invalidb/internal/experiments"
	"invalidb/internal/loadgen"
	"invalidb/internal/query"
	"invalidb/internal/storage"
	"invalidb/internal/topology"
)

// benchCfg is the scaled experiment configuration used by the figure
// benchmarks: small node budget and short phases so a full -bench=. run
// stays in the minutes.
func benchCfg() experiments.Config {
	return experiments.Config{
		NodeCapacity:       20_000,
		MatchingQueries:    10,
		TargetNotifsPerSec: 40,
		Warmup:             200 * time.Millisecond,
		Measure:            500 * time.Millisecond,
		Drain:              250 * time.Millisecond,
	}
}

func reportPoint(b *testing.B, p experiments.Point) {
	b.Helper()
	s := p.Summary
	b.ReportMetric(s.AvgMS, "avg-ms")
	b.ReportMetric(s.P99MS, "p99-ms")
	b.ReportMetric(s.MaxMS, "max-ms")
	delivery := 0.0
	if p.Expected > 0 {
		delivery = float64(p.Delivered) / float64(p.Expected)
	}
	b.ReportMetric(delivery*100, "delivered-%")
}

// BenchmarkFig4ReadScalability measures the read-scalability operating
// points (paper Figure 4): ~80% of each cluster size's query capacity at a
// fixed 1 000 ops/s. Linear scaling shows as the queries metric doubling
// with QP while p99 stays flat.
func BenchmarkFig4ReadScalability(b *testing.B) {
	cfg := benchCfg()
	perNode := cfg.NodeCapacity / experiments.BaseWriteRate
	for _, qp := range []int{1, 2, 4} {
		queries := int(0.8 * float64(qp*perNode))
		b.Run(fmt.Sprintf("QP-%d", qp), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p, err := experiments.RunClusterPoint(cfg, qp, 1, queries, experiments.BaseWriteRate)
				if err != nil {
					b.Fatal(err)
				}
				reportPoint(b, p)
				b.ReportMetric(float64(queries), "queries")
			}
		})
	}
}

// BenchmarkFig5WriteScalability measures the write-scalability operating
// points (paper Figure 5): ~80% of each cluster size's write capacity with
// a fixed query population.
func BenchmarkFig5WriteScalability(b *testing.B) {
	cfg := benchCfg()
	const queries = 20
	perNodeRate := cfg.NodeCapacity / queries
	for _, wp := range []int{1, 2, 4} {
		rate := int(0.8 * float64(wp*perNodeRate))
		b.Run(fmt.Sprintf("WP-%d", wp), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p, err := experiments.RunClusterPoint(cfg, 1, wp, queries, rate)
				if err != nil {
					b.Fatal(err)
				}
				reportPoint(b, p)
				b.ReportMetric(float64(rate), "ops-per-s")
			}
		})
	}
}

// BenchmarkTable3aReadHeavy reproduces Table 3a's rows: latency statistics
// at ~80% capacity under the read-heavy workload.
func BenchmarkTable3aReadHeavy(b *testing.B) {
	cfg := benchCfg()
	perNode := cfg.NodeCapacity / experiments.BaseWriteRate
	for _, qp := range []int{1, 2, 4} {
		queries := int(0.8 * float64(qp*perNode))
		b.Run(fmt.Sprintf("QP-%d-queries-%d", qp, queries), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p, err := experiments.RunClusterPoint(cfg, qp, 1, queries, experiments.BaseWriteRate)
				if err != nil {
					b.Fatal(err)
				}
				reportPoint(b, p)
				b.ReportMetric(p.Summary.StdMS, "std-ms")
			}
		})
	}
}

// BenchmarkTable3bWriteHeavy reproduces Table 3b's rows: latency statistics
// at ~66% capacity under the write-heavy workload.
func BenchmarkTable3bWriteHeavy(b *testing.B) {
	cfg := benchCfg()
	const queries = 20
	perNodeRate := cfg.NodeCapacity / queries
	for _, wp := range []int{1, 2, 4} {
		rate := int(0.66 * float64(wp*perNodeRate))
		b.Run(fmt.Sprintf("WP-%d-rate-%d", wp, rate), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p, err := experiments.RunClusterPoint(cfg, 1, wp, queries, rate)
				if err != nil {
					b.Fatal(err)
				}
				reportPoint(b, p)
				b.ReportMetric(p.Summary.StdMS, "std-ms")
			}
		})
	}
}

// BenchmarkFig6aQuaestorRead compares standalone InvaliDB against the
// Quaestor application server under the read-heavy workload (paper Figure
// 6a): the overhead-ms metric is the app server's added latency.
func BenchmarkFig6aQuaestorRead(b *testing.B) {
	cfg := benchCfg()
	queries := int(0.5 * float64(cfg.NodeCapacity/experiments.BaseWriteRate))
	for i := 0; i < b.N; i++ {
		inv, err := experiments.RunClusterPoint(cfg, 1, 1, queries, experiments.BaseWriteRate)
		if err != nil {
			b.Fatal(err)
		}
		qst, err := experiments.RunQuaestorPoint(cfg, 1, 1, queries, experiments.BaseWriteRate)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(inv.Summary.AvgMS, "invalidb-avg-ms")
		b.ReportMetric(qst.Summary.AvgMS, "quaestor-avg-ms")
		b.ReportMetric(qst.Summary.AvgMS-inv.Summary.AvgMS, "overhead-ms")
	}
}

// BenchmarkFig6bQuaestorWrite compares the two deployments under write load
// (paper Figure 6b): with the app-server write ceiling below the offered
// rate, Quaestor latency collapses while standalone InvaliDB sustains.
func BenchmarkFig6bQuaestorWrite(b *testing.B) {
	cfg := benchCfg()
	cfg.AppServerWriteCapacity = 500
	const queries = 10
	rate := 1200
	for i := 0; i < b.N; i++ {
		inv, err := experiments.RunClusterPoint(cfg, 1, 1, queries, rate)
		if err != nil {
			b.Fatal(err)
		}
		qst, err := experiments.RunQuaestorPoint(cfg, 1, 1, queries, rate)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(inv.Summary.P99MS, "invalidb-p99-ms")
		b.ReportMetric(qst.Summary.P99MS, "quaestor-p99-ms")
	}
}

// BenchmarkFig6cLatencyDistributionRead captures the read-heavy latency
// distribution snapshot (paper Figure 6c); the reported overflow fraction is
// the tail beyond the histogram range.
func BenchmarkFig6cLatencyDistributionRead(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		pair, err := experiments.Fig6c(cfg, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pair.InvaliDB.Summary.P99MS, "invalidb-p99-ms")
		b.ReportMetric(pair.Quaestor.Summary.P99MS, "quaestor-p99-ms")
		_, overflow := pair.Quaestor.Hist.Buckets()
		b.ReportMetric(overflow*100, "tail-beyond-100ms-%")
	}
}

// BenchmarkFig6dLatencyDistributionWrite captures the write-heavy snapshot
// (paper Figure 6d).
func BenchmarkFig6dLatencyDistributionWrite(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		pair, err := experiments.Fig6d(cfg, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pair.InvaliDB.Summary.P99MS, "invalidb-p99-ms")
		b.ReportMetric(pair.Quaestor.Summary.P99MS, "quaestor-p99-ms")
	}
}

// BenchmarkBaselineComparison runs the §3.1 mechanism comparison (the
// executable counterpart of Table 2's scaling rows): InvaliDB with write
// partitioning vs the log-tailing single node vs poll-and-diff.
func BenchmarkBaselineComparison(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		results, err := experiments.Baselines(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			switch r.Mechanism {
			case "InvaliDB (4 write partitions)":
				b.ReportMetric(r.Point.Summary.P99MS, "invalidb-p99-ms")
			case "Log tailing (single node)":
				b.ReportMetric(r.Point.Summary.P99MS, "logtailing-p99-ms")
			case "Poll-and-diff":
				b.ReportMetric(r.Point.Summary.AvgMS, "polldiff-staleness-ms")
			}
		}
	}
}

// --- Substrate micro-benchmarks ---------------------------------------------

// BenchmarkMatchRangeQuery is the filtering stage's hot operation: one
// after-image evaluated against one range query (the paper's workload
// predicate).
func BenchmarkMatchRangeQuery(b *testing.B) {
	w := loadgen.New(1, 8)
	q := query.MustCompile(w.MatchingQuery(0))
	doc := w.Doc(true, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !q.Match(doc) {
			b.Fatal("miss")
		}
	}
}

// BenchmarkMatchComplexFilter exercises nested logical operators, regex and
// array conditions.
func BenchmarkMatchComplexFilter(b *testing.B) {
	q := query.MustCompile(query.Spec{
		Collection: "c",
		Filter: map[string]any{
			"$or": []any{
				map[string]any{"tags": map[string]any{"$all": []any{"go", "db"}}},
				map[string]any{"$and": []any{
					map[string]any{"name": map[string]any{"$regex": "^inva"}},
					map[string]any{"n": map[string]any{"$mod": []any{7, 3}}},
				}},
			},
		},
	})
	doc := document.Document{"name": "invalidb", "n": int64(10), "tags": []any{"streaming"}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !q.Match(doc) {
			b.Fatal("miss")
		}
	}
}

// BenchmarkSortComparator measures the engine comparator used by the
// sorting stage and the pull-based engine.
func BenchmarkSortComparator(b *testing.B) {
	q := query.MustCompile(query.Spec{
		Collection: "c",
		Sort:       []query.SortKey{{Path: "year", Desc: true}, {Path: "title"}},
	})
	x := document.Document{"_id": "a", "year": int64(2018), "title": "DB Fun"}
	y := document.Document{"_id": "b", "year": int64(2018), "title": "No SQL!"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if q.Compare(x, y) >= 0 {
			b.Fatal("order broken")
		}
	}
}

// BenchmarkAfterImageCodec measures the (de)serialization overhead the
// paper identifies as the write-path cost that makes write-heavy workloads
// slightly less efficient than read-heavy ones (§6.3).
func BenchmarkAfterImageCodec(b *testing.B) {
	w := loadgen.New(1, 1)
	ai := &document.AfterImage{
		Collection: loadgen.Collection, Key: "k", Version: 7,
		Op: document.OpInsert, Doc: w.Doc(false, 0),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := ai.Encode()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := document.DecodeAfterImage(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStorageFindAndModify measures the database write path that
// produces after-images.
func BenchmarkStorageFindAndModify(b *testing.B) {
	db := storage.Open(storage.Options{})
	c := db.C("c")
	if _, err := c.Insert(document.Document{"_id": "k", "n": 0}); err != nil {
		b.Fatal(err)
	}
	update := map[string]any{"$inc": map[string]any{"n": 1}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.FindAndModify("k", update, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStorageIndexedFind measures an equality-indexed query.
func BenchmarkStorageIndexedFind(b *testing.B) {
	db := storage.Open(storage.Options{})
	c := db.C("c")
	_ = c.EnsureIndex("cat")
	for i := 0; i < 10000; i++ {
		_, _ = c.Insert(document.Document{"_id": fmt.Sprint(i), "cat": i % 100, "n": i})
	}
	q := query.MustCompile(query.Spec{Collection: "c", Filter: map[string]any{"cat": 42}})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		docs, err := c.Find(q)
		if err != nil || len(docs) != 100 {
			b.Fatalf("find: %d docs, %v", len(docs), err)
		}
	}
}

// BenchmarkMemBusPublish measures the in-process event layer.
func BenchmarkMemBusPublish(b *testing.B) {
	bus := eventlayer.NewMemBus(eventlayer.MemBusOptions{BufferSize: 1 << 16})
	defer bus.Close()
	sub, _ := bus.Subscribe("t")
	go func() {
		for range sub.C() {
		}
	}()
	payload := []byte("0123456789abcdef0123456789abcdef")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bus.Publish("t", payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTopologyFieldsGrouping measures the stream processor's routing
// throughput under fields grouping (the cluster's partitioning primitive).
func BenchmarkTopologyFieldsGrouping(b *testing.B) {
	done := make(chan struct{})
	var count int
	spout := &benchSpout{n: b.N}
	builder := topology.NewBuilder()
	builder.SetSpout("src", func() topology.Spout { return spout }, 1, "key")
	builder.SetBolt("sink", func() topology.Bolt {
		return &benchBolt{target: b.N, done: done, count: &count}
	}, 1).FieldsGrouping("src", "key")
	top, err := builder.Build(topology.Config{QueueSize: 1 << 14})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	if err := top.Start(); err != nil {
		b.Fatal(err)
	}
	<-done
	b.StopTimer()
	top.Stop()
}

// BenchmarkFanOutRouting measures the steady-state routing hot path —
// pooled tuple, type-switched key hash, channel hand-off — with pre-built
// value slices, so a non-zero allocs/op directly indicts the routing layer.
// The acceptance bar is 0 allocs/op for both key types.
func BenchmarkFanOutRouting(b *testing.B) {
	mkStringVals := func(i int) topology.Values { return topology.Values{fmt.Sprintf("key-%d", i)} }
	mkUint64Vals := func(i int) topology.Values { return topology.Values{uint64(i)} }
	for _, tc := range []struct {
		name string
		mk   func(int) topology.Values
	}{
		{"string-key", mkStringVals},
		{"uint64-key", mkUint64Vals},
	} {
		b.Run(tc.name, func(b *testing.B) {
			vals := make([]topology.Values, 1024)
			for i := range vals {
				vals[i] = tc.mk(i)
			}
			done := make(chan struct{})
			var count int
			spout := &routeBenchSpout{n: b.N, vals: vals}
			builder := topology.NewBuilder()
			builder.SetSpout("src", func() topology.Spout { return spout }, 1, "key")
			builder.SetBolt("sink", func() topology.Bolt {
				return &benchBolt{target: b.N, done: done, count: &count}
			}, 1).FieldsGrouping("src", "key")
			top, err := builder.Build(topology.Config{QueueSize: 1 << 14})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			if err := top.Start(); err != nil {
				b.Fatal(err)
			}
			<-done
			b.StopTimer()
			top.Stop()
		})
	}
}

// routeBenchSpout re-emits pre-built value slices so the benchmark observes
// only the routing layer's allocations, not the test harness's.
type routeBenchSpout struct {
	n, sent int
	vals    []topology.Values
	ctx     *topology.SpoutContext
}

func (s *routeBenchSpout) Open(ctx *topology.SpoutContext) error { s.ctx = ctx; return nil }
func (s *routeBenchSpout) NextTuple() bool {
	if s.sent >= s.n {
		return false
	}
	s.ctx.Emit(s.vals[s.sent&1023])
	s.sent++
	return true
}
func (s *routeBenchSpout) Ack(topology.MsgID)  {}
func (s *routeBenchSpout) Fail(topology.MsgID) {}
func (s *routeBenchSpout) Close()              {}

type benchSpout struct {
	n, sent int
	ctx     *topology.SpoutContext
}

func (s *benchSpout) Open(ctx *topology.SpoutContext) error { s.ctx = ctx; return nil }
func (s *benchSpout) NextTuple() bool {
	if s.sent >= s.n {
		return false
	}
	s.ctx.Emit(topology.Values{s.sent & 1023})
	s.sent++
	return true
}
func (s *benchSpout) Ack(topology.MsgID)  {}
func (s *benchSpout) Fail(topology.MsgID) {}
func (s *benchSpout) Close()              {}

type benchBolt struct {
	target int
	count  *int
	done   chan struct{}
	out    topology.Collector
}

func (bb *benchBolt) Prepare(ctx *topology.BoltContext, out topology.Collector) error {
	bb.out = out
	return nil
}
func (bb *benchBolt) Execute(t *topology.Tuple) {
	bb.out.Ack(t)
	*bb.count++
	if *bb.count == bb.target {
		close(bb.done)
	}
}
func (bb *benchBolt) Cleanup() {}

// BenchmarkEndToEndNotification measures a full round trip: application
// server write -> database -> event layer -> cluster match -> notification
// -> subscription event.
func BenchmarkEndToEndNotification(b *testing.B) {
	dep, err := Open(Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer dep.Close()
	sub, err := dep.Server.Subscribe(Spec{Collection: "c", Filter: map[string]any{"hot": true}})
	if err != nil {
		b.Fatal(err)
	}
	<-sub.C() // initial
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dep.Server.Insert("c", Document{"_id": fmt.Sprint(i), "hot": true}); err != nil {
			b.Fatal(err)
		}
		ev := <-sub.C()
		if ev.Type != EventAdd {
			b.Fatalf("event %v", ev.Type)
		}
	}
}

// BenchmarkWriteBatchIngest measures the batched write-ingestion path at the
// cluster level: versioned updates of one record flow through the event
// layer, the batching write-ingest stage, and a 4-row matching grid, with a
// window of writes in flight so ingestion batches actually form.
func BenchmarkWriteBatchIngest(b *testing.B) {
	bus := eventlayer.NewMemBus(eventlayer.MemBusOptions{BufferSize: 1 << 16})
	defer bus.Close()
	cluster, err := core.NewCluster(bus, core.Options{QueryPartitions: 4})
	if err != nil {
		b.Fatal(err)
	}
	if err := cluster.Start(); err != nil {
		b.Fatal(err)
	}
	defer cluster.Stop()
	topics := cluster.Topics()
	notif, err := bus.Subscribe(topics.Notify("t"))
	if err != nil {
		b.Fatal(err)
	}
	defer notif.Close()

	sub := &core.Envelope{Kind: core.KindSubscribe, Subscribe: &core.SubscribeRequest{
		Tenant: "t", SubscriptionID: "bench",
		Query:     query.Spec{Collection: "c", Filter: map[string]any{"hot": true}},
		TTLMillis: (10 * time.Minute).Milliseconds(),
	}}
	data, err := sub.Encode()
	if err != nil {
		b.Fatal(err)
	}
	if err := bus.Publish(topics.Queries(), data); err != nil {
		b.Fatal(err)
	}

	// Distinct keys per write: the parallel ingestion tasks batch
	// independently, so same-key version chains could arrive reordered and be
	// (correctly) dropped by the staleness guard — inserts of fresh keys make
	// the notification count deterministic.
	publish := func(key string) {
		env := &core.Envelope{Kind: core.KindWrite, Write: &core.WriteEvent{
			Tenant: "t",
			Image: &document.AfterImage{
				Collection: "c", Key: key, Version: 1, Op: document.OpInsert,
				Doc: document.Document{"_id": key, "hot": true},
			},
		}}
		data, err := env.Encode()
		if err != nil {
			b.Fatal(err)
		}
		if err := bus.Publish(topics.Writes(), data); err != nil {
			b.Fatal(err)
		}
	}
	recv := func() {
		deadline := time.After(10 * time.Second)
		for {
			select {
			case msg, ok := <-notif.C():
				if !ok {
					b.Fatal("notification stream closed")
				}
				env, err := core.DecodeEnvelope(msg.Payload)
				if err != nil || env.Kind != core.KindNotification {
					continue // heartbeats
				}
				return
			case <-deadline:
				b.Fatal("timed out waiting for notification")
			}
		}
	}
	// Preparation barrier (as in the experiments driver): once the query
	// ingestion stage has executed the subscribe tuple, the query sits in
	// every matching node's input queue ahead of any write published below.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var ingested uint64
		for _, s := range cluster.Stats() {
			if s.Component == "query-ingest" {
				ingested += s.Executed
			}
		}
		if ingested >= 1 {
			break
		}
		if time.Now().After(deadline) {
			b.Fatal("query ingestion did not finish")
		}
		time.Sleep(2 * time.Millisecond)
	}

	const window = 256
	b.ReportAllocs()
	b.ResetTimer()
	inFlight := 0
	for i := 0; i < b.N; i++ {
		publish(fmt.Sprintf("k%08d", i))
		if inFlight++; inFlight >= window {
			recv()
			inFlight--
		}
	}
	for ; inFlight > 0; inFlight-- {
		recv()
	}
}

// --- Ablations ---------------------------------------------------------------

// BenchmarkAblationAcking quantifies the cost of Storm-style at-least-once
// delivery (the XOR acker ledger) on the routing substrate — the trade-off
// behind the paper's choice of an at-least-once stream processor (§5.4).
func BenchmarkAblationAcking(b *testing.B) {
	for _, acking := range []bool{false, true} {
		name := "acking-off"
		if acking {
			name = "acking-on"
		}
		b.Run(name, func(b *testing.B) {
			done := make(chan struct{})
			var count int
			spout := &ackBenchSpout{n: b.N}
			builder := topology.NewBuilder()
			builder.SetSpout("src", func() topology.Spout { return spout }, 1, "key")
			builder.SetBolt("sink", func() topology.Bolt {
				return &benchBolt{target: b.N, done: done, count: &count}
			}, 1).FieldsGrouping("src", "key")
			top, err := builder.Build(topology.Config{
				QueueSize:    1 << 14,
				EnableAcking: acking,
				AckTimeout:   time.Minute,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			if err := top.Start(); err != nil {
				b.Fatal(err)
			}
			<-done
			b.StopTimer()
			top.Stop()
		})
	}
}

// ackBenchSpout is benchSpout with functional Ack/Fail (required when the
// acker is enabled).
type ackBenchSpout struct {
	n, sent int
	ctx     *topology.SpoutContext
}

func (s *ackBenchSpout) Open(ctx *topology.SpoutContext) error { s.ctx = ctx; return nil }
func (s *ackBenchSpout) NextTuple() bool {
	if s.sent >= s.n {
		return false
	}
	s.ctx.Emit(topology.Values{s.sent & 1023})
	s.sent++
	return true
}
func (s *ackBenchSpout) Ack(topology.MsgID)  {}
func (s *ackBenchSpout) Fail(topology.MsgID) {}
func (s *ackBenchSpout) Close()              {}

// BenchmarkAblationSlack quantifies the §5.2 slack trade-off end to end:
// renewal frequency under head-of-window deletions with minimal vs generous
// slack. Reported metric: renewals per 100 deletions.
func BenchmarkAblationSlack(b *testing.B) {
	for _, slack := range []int{1, 16} {
		b.Run(fmt.Sprintf("slack-%d", slack), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				dep, err := Open(Config{
					Slack:              slack,
					MaxSlack:           slack, // pin: the ablation isolates the slack value
					RenewalMinInterval: time.Millisecond,
				})
				if err != nil {
					b.Fatal(err)
				}
				for k := 0; k < 140; k++ {
					if err := dep.Server.Insert("s", Document{"_id": fmt.Sprintf("k%03d", k), "rank": k}); err != nil {
						b.Fatal(err)
					}
				}
				sub, err := dep.Server.Subscribe(Spec{
					Collection: "s", Sort: []SortKey{{Path: "rank"}}, Limit: 3,
				})
				if err != nil {
					b.Fatal(err)
				}
				<-sub.C()
				b.StartTimer()
				for k := 0; k < 100; k++ {
					if err := dep.Server.Delete("s", fmt.Sprintf("k%03d", k)); err != nil {
						b.Fatal(err)
					}
					time.Sleep(2 * time.Millisecond)
				}
				b.StopTimer()
				b.ReportMetric(float64(dep.Server.Renewals()), "renewals/100-deletes")
				dep.Close()
				b.StartTimer()
			}
		})
	}
}

// BenchmarkAblationQueryIndex quantifies the multi-query interval index
// (thesis optimization): the same node budget sustains a 10x query
// population once per-write cost drops to the candidate count.
func BenchmarkAblationQueryIndex(b *testing.B) {
	for _, indexed := range []bool{false, true} {
		name := "index-off"
		cfg := benchCfg()
		const queries = 100 // 5x the unindexed capacity at 1 000 ops/s
		if indexed {
			name = "index-on"
			cfg.EnableQueryIndex = true
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p, err := experiments.RunClusterPoint(cfg, 1, 1, queries, experiments.BaseWriteRate)
				if err != nil {
					b.Fatal(err)
				}
				reportPoint(b, p)
			}
		})
	}
}
